"""Word kernels: functional single-pass fusion."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StageError
from repro.ilp.kernels import (
    FusedWordLoop,
    byteswap_kernel,
    bytes_to_words,
    checksum_kernel,
    copy_kernel,
    words_to_bytes,
    xor_kernel,
)
from repro.stages.checksum import internet_checksum


class TestWordPacking:
    def test_roundtrip_aligned(self):
        data = bytes(range(16))
        words, length = bytes_to_words(data)
        assert words_to_bytes(words, length) == data

    @given(st.binary(max_size=100))
    def test_roundtrip_any_length(self, data):
        words, length = bytes_to_words(data)
        assert words_to_bytes(words, length) == data

    def test_padding_is_zero(self):
        words, _ = bytes_to_words(b"\xff")
        assert int(words[0]) == 0xFF000000  # big-endian, zero-padded


class TestKernels:
    def test_copy_is_identity(self):
        loop = FusedWordLoop([copy_kernel()])
        out, obs = loop.run(b"hello world")
        assert out == b"hello world"
        assert obs == {}

    def test_checksum_matches_reference(self):
        data = bytes(range(256)) * 4
        loop = FusedWordLoop([checksum_kernel()])
        _, obs = loop.run(data)
        assert obs["checksum"] == internet_checksum(data)

    @given(st.binary(max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_checksum_matches_reference_any_input(self, data):
        _, obs = FusedWordLoop([checksum_kernel()]).run(data)
        assert obs["checksum"] == internet_checksum(data)

    def test_xor_is_self_inverse(self):
        loop = FusedWordLoop([xor_kernel(0xDEADBEEF), xor_kernel(0xDEADBEEF)])
        assert loop.run(b"secret data!")[0] == b"secret data!"

    def test_byteswap_twice_is_identity(self):
        loop = FusedWordLoop([byteswap_kernel(), byteswap_kernel()])
        assert loop.run(b"12345678")[0] == b"12345678"

    def test_byteswap_swaps(self):
        out, _ = FusedWordLoop([byteswap_kernel()]).run(b"\x01\x02\x03\x04")
        assert out == b"\x04\x03\x02\x01"

    def test_empty_loop_rejected(self):
        with pytest.raises(StageError):
            FusedWordLoop([])


class TestFusion:
    KERNELS = staticmethod(
        lambda: [
            copy_kernel(),
            checksum_kernel(),
            xor_kernel(0xA5A5A5A5),
            byteswap_kernel(),
        ]
    )

    def test_fused_equals_layered(self):
        data = bytes(range(256)) * 16
        loop = FusedWordLoop(self.KERNELS())
        fused_out, fused_obs = loop.run(data)
        layered_out, layered_obs = loop.run_layered(data)
        assert fused_out == layered_out
        assert fused_obs == layered_obs

    @given(st.binary(min_size=1, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_fused_equals_layered_property(self, data):
        loop = FusedWordLoop(self.KERNELS())
        assert loop.run(data) == loop.run_layered(data)

    def test_checksum_observes_pre_encryption_data(self):
        """Kernel order matters and is preserved: the checksum placed
        before the XOR sees plaintext."""
        data = bytes(range(64))
        loop = FusedWordLoop([checksum_kernel(), xor_kernel(1)])
        _, obs = loop.run(data)
        assert obs["checksum"] == internet_checksum(data)

    def test_fused_cost_cheaper_than_layered(self):
        loop = FusedWordLoop(self.KERNELS())
        assert (
            loop.fused_cost.reads_per_word
            < loop.layered_cost.reads_per_word
        )

    def test_fused_cost_single_stream_read(self):
        """However many kernels, the fused loop reads the stream once."""
        loop = FusedWordLoop(self.KERNELS())
        assert loop.fused_cost.reads_per_word == 1.0


class TestKernelOrderings:
    """Satellite regression: fused and layered engineerings must agree
    for *every* kernel ordering — composition order is semantics (the
    checksum before vs after encryption observes different data), and
    both engineerings must realize the same semantics bit for bit."""

    FACTORIES = {
        "copy": copy_kernel,
        "checksum": checksum_kernel,
        "xor": lambda: xor_kernel(0xA5A5A5A5),
        "byteswap": byteswap_kernel,
    }

    LENGTHS = [0, 1, 3, 4, 13, 64, 257]

    @pytest.mark.parametrize(
        "ordering",
        list(itertools.permutations(FACTORIES)),
        ids=lambda names: "-".join(names),
    )
    def test_fused_equals_layered_every_ordering(self, ordering):
        for n in self.LENGTHS:
            data = bytes((11 * i + n) % 256 for i in range(n))
            loop = FusedWordLoop(
                [self.FACTORIES[name]() for name in ordering]
            )
            assert loop.run(data) == loop.run_layered(data)

    def test_checksum_before_xor_observes_plaintext(self):
        data = bytes(range(64))
        loop = FusedWordLoop([checksum_kernel(), xor_kernel(0xA5A5A5A5)])
        _, obs = loop.run(data)
        assert obs["checksum"] == internet_checksum(data)

    def test_xor_before_checksum_observes_ciphertext(self):
        data = bytes(range(64))  # word-aligned: the XOR is byte-exact
        ciphertext, _ = FusedWordLoop([xor_kernel(0xA5A5A5A5)]).run(data)
        assert ciphertext != data
        loop = FusedWordLoop([xor_kernel(0xA5A5A5A5), checksum_kernel()])
        _, obs = loop.run(data)
        assert obs["checksum"] == internet_checksum(ciphertext)
        # And the layered engineering observes the same ciphertext sum.
        _, layered_obs = loop.run_layered(data)
        assert layered_obs == obs

    def test_batch_finalize_matches_scalar_finalize(self):
        kernel = checksum_kernel()
        payloads = [b"", b"a", bytes(range(7)), bytes(range(16)), b"xy" * 33]
        width = max((len(p) + 3) // 4 for p in payloads)
        rows, lengths = [], []
        for p in payloads:
            padded, _ = bytes_to_words(p + bytes(4 * width - len(p)))
            rows.append(padded)
            lengths.append(len(p))
        values = kernel.batch_finalize(np.stack(rows), np.array(lengths))
        for i, p in enumerate(payloads):
            words, length = bytes_to_words(p)
            # Zero padding cannot perturb a one's-complement sum, so the
            # batch value over the padded row equals the scalar value.
            assert int(values[i]) == kernel.finalize(words, length)
            assert int(values[i]) == internet_checksum(p)
