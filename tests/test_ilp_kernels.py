"""Word kernels: functional single-pass fusion."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StageError
from repro.ilp.kernels import (
    FusedWordLoop,
    byteswap_kernel,
    bytes_to_words,
    checksum_kernel,
    copy_kernel,
    words_to_bytes,
    xor_kernel,
)
from repro.stages.checksum import internet_checksum


class TestWordPacking:
    def test_roundtrip_aligned(self):
        data = bytes(range(16))
        words, length = bytes_to_words(data)
        assert words_to_bytes(words, length) == data

    @given(st.binary(max_size=100))
    def test_roundtrip_any_length(self, data):
        words, length = bytes_to_words(data)
        assert words_to_bytes(words, length) == data

    def test_padding_is_zero(self):
        words, _ = bytes_to_words(b"\xff")
        assert int(words[0]) == 0xFF000000  # big-endian, zero-padded


class TestKernels:
    def test_copy_is_identity(self):
        loop = FusedWordLoop([copy_kernel()])
        out, obs = loop.run(b"hello world")
        assert out == b"hello world"
        assert obs == {}

    def test_checksum_matches_reference(self):
        data = bytes(range(256)) * 4
        loop = FusedWordLoop([checksum_kernel()])
        _, obs = loop.run(data)
        assert obs["checksum"] == internet_checksum(data)

    @given(st.binary(max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_checksum_matches_reference_any_input(self, data):
        _, obs = FusedWordLoop([checksum_kernel()]).run(data)
        assert obs["checksum"] == internet_checksum(data)

    def test_xor_is_self_inverse(self):
        loop = FusedWordLoop([xor_kernel(0xDEADBEEF), xor_kernel(0xDEADBEEF)])
        assert loop.run(b"secret data!")[0] == b"secret data!"

    def test_byteswap_twice_is_identity(self):
        loop = FusedWordLoop([byteswap_kernel(), byteswap_kernel()])
        assert loop.run(b"12345678")[0] == b"12345678"

    def test_byteswap_swaps(self):
        out, _ = FusedWordLoop([byteswap_kernel()]).run(b"\x01\x02\x03\x04")
        assert out == b"\x04\x03\x02\x01"

    def test_empty_loop_rejected(self):
        with pytest.raises(StageError):
            FusedWordLoop([])


class TestFusion:
    KERNELS = staticmethod(
        lambda: [
            copy_kernel(),
            checksum_kernel(),
            xor_kernel(0xA5A5A5A5),
            byteswap_kernel(),
        ]
    )

    def test_fused_equals_layered(self):
        data = bytes(range(256)) * 16
        loop = FusedWordLoop(self.KERNELS())
        fused_out, fused_obs = loop.run(data)
        layered_out, layered_obs = loop.run_layered(data)
        assert fused_out == layered_out
        assert fused_obs == layered_obs

    @given(st.binary(min_size=1, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_fused_equals_layered_property(self, data):
        loop = FusedWordLoop(self.KERNELS())
        assert loop.run(data) == loop.run_layered(data)

    def test_checksum_observes_pre_encryption_data(self):
        """Kernel order matters and is preserved: the checksum placed
        before the XOR sees plaintext."""
        data = bytes(range(64))
        loop = FusedWordLoop([checksum_kernel(), xor_kernel(1)])
        _, obs = loop.run(data)
        assert obs["checksum"] == internet_checksum(data)

    def test_fused_cost_cheaper_than_layered(self):
        loop = FusedWordLoop(self.KERNELS())
        assert (
            loop.fused_cost.reads_per_word
            < loop.layered_cost.reads_per_word
        )

    def test_fused_cost_single_stream_read(self):
        """However many kernels, the fused loop reads the stream once."""
        loop = FusedWordLoop(self.KERNELS())
        assert loop.fused_cost.reads_per_word == 1.0
