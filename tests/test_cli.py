"""The command-line interface."""

import pytest

from repro.bench.harness import ExperimentResult
from repro.cli import CATALOG, main


def test_catalog_covers_design_index():
    """Every experiment id in DESIGN.md's index is runnable."""
    for eid in ("T1", "E1", "E2", "E3", "E4", "E5", "E6", "E7",
                "F1", "F2", "F3", "F4", "F5", "F6",
                "A1", "A2", "A3", "A4", "A5", "A6"):
        assert eid in CATALOG


def test_catalog_runners_return_results():
    _, runner = CATALOG["T1"]
    assert isinstance(runner(), ExperimentResult)


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "T1" in out and "Table 1" in out


def test_run_single(capsys):
    assert main(["run", "T1"]) == 0
    out = capsys.readouterr().out
    assert "[T1]" in out
    assert "130.00" in out


def test_run_is_case_insensitive(capsys):
    assert main(["run", "t1"]) == 0
    assert "[T1]" in capsys.readouterr().out


def test_run_multiple(capsys):
    assert main(["run", "T1", "E2"]) == 0
    out = capsys.readouterr().out
    assert "[T1]" in out and "[E2]" in out


def test_run_unknown_id(capsys):
    assert main(["run", "Z9"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_nothing(capsys):
    assert main(["run"]) == 2
    assert "nothing to run" in capsys.readouterr().err


def test_calibration(capsys):
    assert main(["calibration"]) == 0
    out = capsys.readouterr().out
    assert "MIPS R2000" in out
    assert "90.0" in out  # the fused copy+checksum check


def test_report_to_path(tmp_path, capsys):
    target = tmp_path / "EXP.md"
    assert main(["report", str(target)]) == 0
    text = target.read_text()
    assert "[T1]" in text and "[E7]" in text


def test_requires_a_command():
    with pytest.raises(SystemExit):
        main([])


def test_verify_passes(capsys):
    assert main(["verify"]) == 0
    assert "guards hold" in capsys.readouterr().out


def test_verify_detects_drift(monkeypatch, capsys):
    from repro.bench import regress

    monkeypatch.setattr(
        regress, "verify_headlines", lambda: ["T1 / fake: drifted"]
    )
    assert main(["verify"]) == 1
    assert "DRIFT" in capsys.readouterr().err


def test_guard_bands_are_sane():
    from repro.bench.regress import _SUITES

    for _, guards in _SUITES:
        for guard in guards:
            assert guard.low <= guard.high


def test_ilp_stats(capsys):
    assert main(["ilp", "stats"]) == 0
    assert "plan cache" in capsys.readouterr().out


def test_buffers_stats(capsys):
    from repro.buffers import BufferChain
    from repro.machine.accounting import datapath_counters

    # Put something recognisable on the counters first.
    datapath_counters().reset()
    chain = BufferChain.from_bytes(b"x" * 128)
    chain.linearize()
    chain.release()

    assert main(["buffers", "stats"]) == 0
    out = capsys.readouterr().out
    assert "datapath counters" in out
    assert "copy[linearize] 128 bytes" in out
    assert "rx pool" in out
    assert "hits" in out
    datapath_counters().reset()


def test_presentation_stats(capsys):
    from repro.presentation.abstract import ArrayOf, Int32
    from repro.presentation.compiler import shared_codec_cache
    from repro.presentation.lwts import LwtsCodec

    shared_codec_cache().get_or_compile(ArrayOf(Int32()), LwtsCodec())
    assert main(["presentation", "stats"]) == 0
    out = capsys.readouterr().out
    assert "codec cache" in out
    assert "presentation counters" in out
    assert "fused_conversions" in out


def test_p3_in_catalog():
    assert "P3" in CATALOG
    result = CATALOG["P3"][1]()
    assert isinstance(result, ExperimentResult)
    assert result.measured("chain read passes per ADU, compiled-fused") == 1.0


def test_secure_stats(capsys):
    from repro.stages.encrypt import WordXorStage, secure_counters

    secure_counters().reset()
    WordXorStage(0xABCD).apply(b"x" * 64)
    assert main(["secure", "stats"]) == 0
    out = capsys.readouterr().out
    assert "secure-path counters" in out
    assert "stage_passes 1" in out
    assert "stage_bytes 64" in out
    assert "fused_passes" in out
    assert "chain_passes" in out
    secure_counters().reset()


def test_p4_in_catalog():
    assert "P4" in CATALOG
    result = CATALOG["P4"][1]()
    assert isinstance(result, ExperimentResult)
    assert result.measured("send-side read passes per ADU") == 1.0
    assert result.measured("receive-side read passes per ADU") == 1.0


def test_shard_stats(capsys):
    from repro.machine.accounting import shard_counters
    from repro.net.host import Host
    from repro.net.shard import ShardedHost
    from repro.sim.eventloop import EventLoop

    shard_counters().reset()
    sharded = ShardedHost(Host(EventLoop(), "b"), 2, protocols=())
    from repro.net.packet import Packet

    for _ in range(3):  # one hash dispatch, then two memo hits
        sharded.receive(
            Packet(
                src="a", dst="b", protocol="noop", flow_id=1,
                header={"adu_seq": 0}, payload=b"",
            )
        )
    assert main(["shard", "stats"]) == 0
    out = capsys.readouterr().out
    assert "shard demux counters" in out
    assert "memo_hits 2" in out
    assert "hash_dispatches 1" in out
    shard_counters().reset()
