"""Direct-mapped cache model: the footnote-2 'cache depletion' effect."""

import pytest

from repro.errors import MachineModelError
from repro.machine.cache import DirectMappedCache


def test_construction_validates():
    with pytest.raises(MachineModelError):
        DirectMappedCache(0)
    with pytest.raises(MachineModelError):
        DirectMappedCache(100, line_bytes=7)
    with pytest.raises(MachineModelError):
        DirectMappedCache(100, line_bytes=16)  # not a multiple


def test_cold_miss_then_hit():
    cache = DirectMappedCache(256, line_bytes=16)
    assert cache.access(0) is False
    assert cache.access(0) is True
    assert cache.access(4) is True  # same line
    assert cache.access(16) is False  # next line


def test_capacity_property():
    cache = DirectMappedCache(1024, line_bytes=32)
    assert cache.capacity_bytes == 1024
    assert cache.n_lines == 32


def test_conflict_eviction():
    cache = DirectMappedCache(64, line_bytes=16)  # 4 lines
    assert cache.access(0) is False
    assert cache.access(64) is False  # maps to same index, evicts
    assert cache.access(0) is False  # evicted: miss again


def test_access_range_counts_misses():
    cache = DirectMappedCache(1024, line_bytes=16)
    misses = cache.access_range(0, 256)
    assert misses == 16  # one per line
    assert cache.access_range(0, 256) == 0  # all hot now


def test_working_set_larger_than_cache_rereads():
    """The ILP motivation: a second pass over a too-big buffer misses."""
    cache = DirectMappedCache(1024, line_bytes=16)
    first = cache.access_range(0, 4096)
    second = cache.access_range(0, 4096)
    assert first == second == 256  # nothing survives between passes


def test_working_set_within_cache_stays_hot():
    cache = DirectMappedCache(8192, line_bytes=16)
    cache.access_range(0, 4096)
    assert cache.access_range(0, 4096) == 0


def test_flush_preserves_stats():
    cache = DirectMappedCache(256, line_bytes=16)
    cache.access(0)
    cache.flush()
    assert cache.access(0) is False
    assert cache.stats.misses == 2


def test_reset_stats():
    cache = DirectMappedCache(256, line_bytes=16)
    cache.access(0)
    cache.reset_stats()
    assert cache.stats.accesses == 0
    assert cache.stats.hit_rate == 0.0


def test_hit_rate():
    cache = DirectMappedCache(256, line_bytes=16)
    cache.access(0)
    cache.access(0)
    assert cache.stats.hit_rate == pytest.approx(0.5)


def test_negative_address_rejected():
    cache = DirectMappedCache(256, line_bytes=16)
    with pytest.raises(MachineModelError):
        cache.access(-1)


def test_access_range_validation():
    cache = DirectMappedCache(256, line_bytes=16)
    with pytest.raises(MachineModelError):
        cache.access_range(0, -1)
    with pytest.raises(MachineModelError):
        cache.access_range(0, 16, stride=0)
