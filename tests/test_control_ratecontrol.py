"""Out-of-band rate control."""

import pytest

from repro.control.ratecontrol import PacedAduSource, ReceiverRateController
from repro.core.adu import Adu
from repro.core.app import ApplicationProcess
from repro.errors import TransportError
from repro.sim.eventloop import EventLoop


def make_adus(count, size=1000):
    return [Adu(index, bytes(size)) for index in range(count)]


class TestPacedSource:
    def test_emits_everything_in_order(self):
        loop = EventLoop()
        sent = []
        source = PacedAduSource(loop, sent.append, make_adus(5),
                                initial_rate_bps=8e6)
        loop.run()
        assert [adu.sequence for adu in sent] == [0, 1, 2, 3, 4]
        assert source.emitted == 5
        assert source.pending == 0

    def test_paces_at_the_rate(self):
        loop = EventLoop()
        times = []
        PacedAduSource(
            loop, lambda adu: times.append(loop.now), make_adus(3, size=1000),
            initial_rate_bps=8000.0,  # 1000 B = 8000 bits = 1 s apart
        )
        loop.run()
        assert times == pytest.approx([0.0, 1.0, 2.0])

    def test_rate_update_takes_effect(self):
        loop = EventLoop()
        times = []
        source = PacedAduSource(
            loop, lambda adu: times.append(loop.now), make_adus(3, size=1000),
            initial_rate_bps=8000.0,
        )
        loop.schedule(0.5, source.on_rate_update, 16000.0)
        loop.run()
        # First gap 1s (old rate), second gap 0.5s (doubled rate).
        assert times[2] - times[1] == pytest.approx(0.5)

    def test_on_drained_fires(self):
        loop = EventLoop()
        drained = []
        PacedAduSource(
            loop, lambda adu: None, make_adus(2),
            initial_rate_bps=1e6, on_drained=lambda: drained.append(loop.now),
        )
        loop.run()
        assert len(drained) == 1

    def test_zero_or_negative_update_ignored(self):
        loop = EventLoop()
        source = PacedAduSource(loop, lambda adu: None, [],
                                initial_rate_bps=100.0)
        source.on_rate_update(0)
        source.on_rate_update(-5)
        assert source.rate_bps == 100.0

    def test_validation(self):
        loop = EventLoop()
        with pytest.raises(TransportError):
            PacedAduSource(loop, lambda adu: None, [], initial_rate_bps=0)


class TestController:
    def test_shrinks_under_backlog(self):
        loop = EventLoop()
        app = ApplicationProcess(loop, processing_rate_bps=8e6)
        grants = []
        controller = ReceiverRateController(
            loop, app, grants.append, interval=0.01, target_backlog=2
        )
        for index in range(20):  # flood
            app.submit(index, 10_000)
        loop.run(until=0.05)
        controller.stop()
        assert grants and grants[-1] < controller.max_rate_bps
        assert grants[0] > grants[-1] or len(grants) == 1

    def test_probes_up_when_idle(self):
        loop = EventLoop()
        app = ApplicationProcess(loop, processing_rate_bps=8e6)
        grants = []
        controller = ReceiverRateController(
            loop, app, grants.append, interval=0.01
        )
        loop.run(until=0.05)
        controller.stop()
        assert grants == sorted(grants)  # monotone probing upward

    def test_rate_bounds_respected(self):
        loop = EventLoop()
        app = ApplicationProcess(loop, processing_rate_bps=8e6)
        grants = []
        controller = ReceiverRateController(
            loop, app, grants.append, interval=0.01,
            min_rate_bps=1000.0, max_rate_bps=2000.0,
        )
        loop.run(until=1.0)
        controller.stop()
        assert all(1000.0 <= g <= 2000.0 for g in grants)

    def test_stop_halts_updates(self):
        loop = EventLoop()
        app = ApplicationProcess(loop, processing_rate_bps=8e6)
        grants = []
        controller = ReceiverRateController(
            loop, app, grants.append, interval=0.01
        )
        loop.run(until=0.03)
        controller.stop()
        count = len(grants)
        loop.run(until=0.2)
        assert len(grants) == count

    def test_validation(self):
        loop = EventLoop()
        app = ApplicationProcess(loop, 100.0)
        with pytest.raises(TransportError):
            ReceiverRateController(loop, app, lambda r: None, interval=0)
        with pytest.raises(TransportError):
            ReceiverRateController(loop, app, lambda r: None, target_backlog=0)


class TestClosedLoop:
    def test_bounded_backlog_end_to_end(self):
        """The A6 behaviour as a unit test: flooding overflows, control
        bounds."""
        from repro.bench.experiments import rate_control

        result = rate_control(n_adus=100)
        flood = result.measured("max app backlog, unpaced")
        paced = result.measured("max app backlog, out-of-band control")
        assert paced < flood / 5
