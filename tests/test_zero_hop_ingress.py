"""Zero-hop sharded ingress: link steering, rebalancing, migration.

The tentpole's contract, unit by unit: the steering table is the same
stable CRC placement the front end always used (until a remap says
otherwise); a train-mode link consulting it delivers single-shard
trains straight onto the owning shard with zero front-end demux;
mixed-shard, unclaimed-protocol and stale-epoch trains fall back to
the front-end slow path; and bucket migrations commit only at train
boundaries with every affected flow quiescent, so delivery stays
exactly-once across a rebalance.
"""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.machine.accounting import ShardCounters
from repro.net.packet import Packet
from repro.net.shard import (
    RebalancePolicy,
    ShardedHost,
    SteeringTable,
    shard_index,
)
from repro.net.topology import sharded_ingress, two_hosts
from repro.transport.alf.receiver import PROTOCOL, AlfReceiver

from tests.test_net_shard import adu_packets, adu_payload, bind_flow


def make_ingress(**kwargs):
    kwargs.setdefault("counters", ShardCounters())
    return sharded_ingress(**kwargs)


def data_packet(flow_id: int, i: int = 0, protocol: str = "alf") -> Packet:
    return Packet(
        src="a", dst="b", protocol=protocol, flow_id=flow_id,
        header={"i": i}, payload=b"x" * 32,
    )


def bind_sinks(sharded) -> dict[int, list[Packet]]:
    """Per-shard catch-all handlers (no transport, just demux evidence)."""
    got: dict[int, list[Packet]] = {}
    for shard in sharded.shards:
        got[shard.index] = []
        shard.host.bind_protocol(
            "alf", lambda p, out=got[shard.index]: out.append(p)
        )
    return got


class TestSteeringTable:
    def test_default_mapping_is_historical_hash(self):
        table = SteeringTable(4)
        for flow_id in range(256):
            shard, _bucket = table.place("alf", flow_id)
            assert shard == shard_index("alf", flow_id, 4)

    def test_memo_and_lookup_counters(self):
        table = SteeringTable(4)
        table.place("alf", 1)
        table.place("alf", 1)
        table.place("alf", 2)
        assert table.lookups == 2
        assert table.memo_hits == 1

    def test_unclaimed_protocol_steers_none(self):
        table = SteeringTable(4, protocols=("alf",))
        assert table.steer("rpc", 1) is None
        assert table.steer("alf", 1) is not None

    def test_remap_bumps_epoch_and_invalidates_memo(self):
        table = SteeringTable(4)
        shard, bucket = table.place("alf", 7)
        target = (shard + 1) % 4
        table.remap(bucket, target)
        assert table.epoch == 1
        assert table.place("alf", 7) == (target, bucket)
        # The post-remap resolution was a fresh lookup, not a memo hit.
        assert table.memo_hits == 0

    def test_remap_validates(self):
        table = SteeringTable(2)
        with pytest.raises(NetworkError):
            table.remap(-1, 0)
        with pytest.raises(NetworkError):
            table.remap(0, 2)

    def test_predicted_loads_follow_charges(self):
        table = SteeringTable(2, buckets_per_shard=1)
        table.charge(0, 0, 10)
        table.charge(1, 1, 2)
        assert table.predicted_loads() == [10.0, 2.0]
        # Under a hypothetical remap the bucket's traffic moves with it.
        assert table.predicted_loads([1, 1]) == [0.0, 12.0]


class TestZeroHopDelivery:
    @pytest.mark.parametrize("threaded", [False, True])
    def test_single_shard_train_skips_front_demux(self, threaded):
        ing = make_ingress(
            shards=4, steer=True, threaded=threaded,
            max_train=8, train_window=1e-3,
        )
        got = bind_sinks(ing.sharded)
        for i in range(16):
            ing.a.send(data_packet(7, i))
        ing.loop.run()
        ing.sharded.drain()
        home = shard_index("alf", 7, 4)
        assert len(got[home]) == 16
        assert ing.a_to_b.stats.steered_trains == 2
        assert ing.a_to_b.stats.steered_packets == 16
        snap = ing.sharded.snapshot()
        # Zero front-end hops: nothing crossed the per-packet demux and
        # no train fell back to the front-end burst walk.
        assert snap["demux"]["packets"] == 0
        assert snap["demux"]["demux_runs"] == 0
        assert snap["demux"]["fallback_trains"] == 0
        assert snap["demux"]["steered_packets"] == 16
        ing.sharded.shutdown()

    def test_mixed_shard_train_falls_back_to_front(self):
        ing = make_ingress(shards=4, steer=True, max_train=8,
                              train_window=1e-3)
        got = bind_sinks(ing.sharded)
        flows = [1, 2, 3, 4, 5, 6, 8, 9]
        homes = {fid: shard_index("alf", fid, 4) for fid in flows}
        assert len(set(homes.values())) > 1  # genuinely mixed
        for fid in flows:
            ing.a.send(data_packet(fid))
        ing.loop.run()
        ing.sharded.drain()
        assert sum(len(v) for v in got.values()) == len(flows)
        for fid, home in homes.items():
            assert any(p.flow_id == fid for p in got[home])
        snap = ing.sharded.snapshot()
        assert ing.a_to_b.stats.steered_trains == 0
        assert snap["demux"]["fallback_trains"] >= 1
        ing.sharded.shutdown()

    def test_unclaimed_protocol_reaches_front_handler(self):
        ing = make_ingress(shards=4, steer=True, max_train=8,
                              train_window=1e-3)
        bind_sinks(ing.sharded)
        other: list[Packet] = []
        ing.b.bind_protocol("rpc", other.append)
        for i in range(4):
            ing.a.send(data_packet(99, i, protocol="rpc"))
        ing.loop.run()
        ing.sharded.drain()
        assert len(other) == 4
        assert ing.a_to_b.stats.steered_trains == 0
        ing.sharded.shutdown()

    def test_migration_mid_train_forces_stale_fallback(self):
        # A bucket migration commits while a train is still open on the
        # link: the boarded placements are stale by delivery time, so
        # the train must take the front-end path (which re-demuxes
        # under the fresh table) rather than land on the old shard.
        ing = make_ingress(shards=4, steer=True, max_train=64,
                              train_window=20e-3)
        got = bind_sinks(ing.sharded)
        for i in range(8):
            ing.a.send(data_packet(7, i))
        bucket = ing.sharded.steering.bucket_of(PROTOCOL, 7)
        source = ing.sharded.steering.map[bucket]
        target = (source + 1) % 4
        # Packets arrive ~1 ms in; the train stays open until ~21 ms.
        ing.loop.schedule(
            0.005, lambda: ing.sharded.migrate_bucket(bucket, target)
        )
        ing.loop.run()
        ing.sharded.drain()
        assert ing.a_to_b.stats.stale_steer_trains == 1
        assert ing.a_to_b.stats.steered_trains == 0
        # The fresh table routed everything to the migration target.
        assert len(got[target]) == 8
        assert len(got[source]) == 0
        ing.sharded.shutdown()

    def test_switch_steer_hint_trusted_when_epoch_current(self):
        ing = make_ingress(shards=4, steer=True, max_train=8,
                              train_window=1e-3)
        got = bind_sinks(ing.sharded)
        table = ing.sharded.steering
        shard, bucket = table.place(PROTOCOL, 7)
        for i in range(8):
            packet = data_packet(7, i)
            packet.header["steer"] = (table.epoch, shard, bucket)
            ing.a.send(packet)
        ing.loop.run()
        ing.sharded.drain()
        assert ing.a_to_b.stats.steer_hints >= 1
        assert ing.a_to_b.stats.steered_trains == 1
        assert len(got[shard]) == 8
        ing.sharded.shutdown()


class TestRebalancePolicy:
    def make_skewed_table(self) -> SteeringTable:
        table = SteeringTable(4, buckets_per_shard=4)
        # 90 % of traffic on shard 0's buckets, spread so single-bucket
        # moves can improve the split.
        for bucket in range(table.n_buckets):
            shard = table.map[bucket]
            table.charge(bucket, shard, 225 if shard == 0 else 9)
        return table

    def test_tick_proposes_hot_to_cold_moves(self):
        table = self.make_skewed_table()
        policy = RebalancePolicy(threshold=1.5, goal=1.15, min_packets=64)
        moves = policy.tick(now=1.0, table=table)
        assert moves, "skewed table must trigger a proposal"
        assert policy.triggers == 1
        mapping = list(table.map)
        for bucket, target in moves:
            assert mapping[bucket] == 0  # moves come off the hot shard
            mapping[bucket] = target
        loads = table.predicted_loads(mapping)
        mean = sum(loads) / len(loads)
        assert max(loads) / mean <= policy.goal + 1e-9

    def test_below_min_packets_never_triggers(self):
        table = SteeringTable(4, buckets_per_shard=4)
        table.charge(0, 0, 10)
        policy = RebalancePolicy(min_packets=256)
        assert policy.tick(1.0, table) == []
        assert policy.triggers == 0

    def test_balanced_table_never_triggers(self):
        table = SteeringTable(4, buckets_per_shard=4)
        for bucket in range(table.n_buckets):
            table.charge(bucket, table.map[bucket], 100)
        policy = RebalancePolicy(min_packets=64)
        assert policy.tick(1.0, table) == []

    def test_cooldown_suppresses_retrigger(self):
        table = self.make_skewed_table()
        policy = RebalancePolicy(min_packets=64, cooldown=1.0)
        assert policy.tick(1.0, table)
        policy.committed(1.0)
        assert policy.tick(1.5, table) == []  # inside the cooldown
        assert policy.tick(2.5, table)  # past it (skew persists)

    def test_ewma_decays_with_simulated_time(self):
        table = SteeringTable(2, buckets_per_shard=2)
        policy = RebalancePolicy(half_life=0.01, min_packets=1)
        table.charge(0, 0, 100)
        policy.observe(0.0, table)
        peak = policy.shard_ewma[0]
        policy.observe(0.05, table)  # five half-lives, no new arrivals
        assert policy.shard_ewma[0] < peak / 16

    def test_validation(self):
        with pytest.raises(NetworkError):
            RebalancePolicy(threshold=1.0)
        with pytest.raises(NetworkError):
            RebalancePolicy(goal=2.0, threshold=1.5)
        with pytest.raises(NetworkError):
            RebalancePolicy(half_life=0.0)
        with pytest.raises(NetworkError):
            RebalancePolicy(max_moves=0)


class TestMigration:
    def make_flow(self, n_shards=4, flow_id=7, **kwargs):
        path = two_hosts(seed=11)
        sharded = ShardedHost(
            path.b, n_shards, counters=ShardCounters(), **kwargs
        )
        delivered: dict[int, list[bytes]] = {}
        shard, receiver = bind_flow(sharded, flow_id, delivered)
        sharded.register_flow(PROTOCOL, flow_id, receiver)
        return path, sharded, shard, receiver, delivered

    def test_migrate_rehomes_receiver_exactly_once(self):
        path, sharded, home, receiver, delivered = self.make_flow()
        payloads = [adu_payload(70 + i) for i in range(4)]
        stream = adu_packets(7, payloads)
        sharded.receive_burst(stream[:2])
        sharded.drain()
        bucket = sharded.steering.bucket_of(PROTOCOL, 7)
        target = (home.index + 1) % 4
        assert sharded.migrate_bucket(bucket, target)
        target_shard = sharded.shards[target]
        assert receiver.host is target_shard.host
        assert receiver.loop is target_shard.loop
        assert receiver.drain_engine is target_shard.engine
        assert sharded.shard_for(PROTOCOL, 7) is target_shard
        # Packets sent after the commit land on the new home and the
        # flow's delivery stream is still byte-identical exactly-once.
        sharded.receive_burst(stream[2:])
        sharded.drain()
        assert delivered[7] == payloads
        assert sharded.counters.migrations == 1
        assert sharded.counters.migrated_flows == 1
        reports = sharded.shutdown()
        assert all(report == [] for report in reports.values())

    def test_migrate_refused_while_flow_mid_reassembly(self):
        path, sharded, home, receiver, delivered = self.make_flow()
        # A two-fragment ADU with only the first fragment arrived: the
        # flow holds a partial row, so it is not quiescent.
        [packet_a, _packet_b] = adu_packets(
            7, [adu_payload(1, 3000)], mtu=2048
        )[:2]
        sharded.receive_burst([packet_a])
        sharded.drain()
        assert not receiver.quiescent
        bucket = sharded.steering.bucket_of(PROTOCOL, 7)
        target = (home.index + 1) % 4
        assert not sharded.migrate_bucket(bucket, target)
        assert receiver.host is home.host
        assert sharded.steering.epoch == 0
        sharded.shutdown()

    def test_migrate_noop_cases(self):
        path, sharded, home, receiver, _ = self.make_flow()
        bucket = sharded.steering.bucket_of(PROTOCOL, 7)
        assert not sharded.migrate_bucket(bucket, home.index)  # same shard
        assert not sharded.migrate_bucket(bucket, 99)  # no such shard
        assert not sharded.migrate_bucket(-1, 0)  # no such bucket
        assert sharded.steering.epoch == 0
        sharded.shutdown()

    def test_rehome_refuses_non_quiescent(self):
        path, sharded, home, receiver, _ = self.make_flow()
        [packet_a, _] = adu_packets(7, [adu_payload(1, 3000)], mtu=2048)[:2]
        sharded.receive_burst([packet_a])
        sharded.drain()
        other = sharded.shards[(home.index + 1) % 4]
        assert not receiver.rehome(other.loop, other.host, other.engine)
        assert receiver.host is home.host
        sharded.shutdown()

    def test_unregister_flow_drops_from_bucket(self):
        path, sharded, home, receiver, _ = self.make_flow()
        sharded.unregister_flow(PROTOCOL, 7)
        bucket = sharded.steering.bucket_of(PROTOCOL, 7)
        target = (home.index + 1) % 4
        # The receiver is still bound on the home shard but no longer
        # registered: remapping its bucket would route future packets
        # to a shard with no binding, so the commit defers instead.
        assert not sharded.migrate_bucket(bucket, target)
        assert receiver.host is home.host
        assert sharded.steering.epoch == 0
        # Once the flow is torn down the bucket carries no unregistered
        # traffic and the remap commits trivially.
        receiver.close()
        assert sharded.migrate_bucket(bucket, target)
        sharded.shutdown()

    def test_unregistered_bound_flow_pins_its_bucket(self):
        # An AlfReceiver bound directly on a shard host, never passed
        # through register_flow, must keep its bucket's placement — a
        # remap would silently strand its delivery.
        path = two_hosts(seed=11)
        sharded = ShardedHost(path.b, 4, counters=ShardCounters())
        delivered: dict[int, list[bytes]] = {}
        home, receiver = bind_flow(sharded, 7, delivered)
        bucket = sharded.steering.bucket_of(PROTOCOL, 7)
        target = (home.index + 1) % 4
        assert not sharded.migrate_bucket(bucket, target)
        assert sharded.steering.epoch == 0
        # Delivery keeps working on the pinned placement.
        payloads = [adu_payload(3)]
        sharded.receive_burst(adu_packets(7, payloads))
        sharded.drain()
        assert delivered[7] == payloads
        sharded.shutdown()

    def test_threaded_migration_requires_idle_target(self):
        # Committing a migration runs the target shard's loop and
        # rebinds onto its host from the front thread — unsafe while
        # the target worker could be servicing.  In-flight service
        # passes are waited out, but a burst sitting on the target's
        # ring with no settled worker must defer the commit.
        from repro.net.shard import Burst

        path, sharded, home, receiver, delivered = self.make_flow(
            threaded=True
        )
        payloads = [adu_payload(80 + i) for i in range(2)]
        stream = adu_packets(7, payloads)
        sharded.receive_burst(stream[:1])
        sharded.drain()
        bucket = sharded.steering.bucket_of(PROTOCOL, 7)
        target = (home.index + 1) % 4
        target_shard = sharded.shards[target]
        target_shard.ring.push(Burst([]))
        assert not sharded.migrate_bucket(bucket, target)
        assert sharded.steering.epoch == 0
        target_shard.ring.pop()
        assert sharded.migrate_bucket(bucket, target)
        sharded.receive_burst(stream[1:])
        sharded.drain()
        assert delivered[7] == payloads
        reports = sharded.shutdown()
        assert all(report == [] for report in reports.values())

    def test_threaded_futures_stay_bounded_without_drain(self):
        # One future per dispatched burst, pruned on append: a long run
        # that never drains must not accumulate settled futures.
        path, sharded, home, receiver, delivered = self.make_flow(
            threaded=True
        )
        payloads = [adu_payload(90 + i) for i in range(64)]
        stream = adu_packets(7, payloads)
        for packet in stream[:-1]:
            sharded.receive(packet)
        # Settle every outstanding service pass without drain(), then
        # dispatch once more: the append-time prune must drop the whole
        # settled prefix rather than keep one future per burst forever.
        for future in list(home.futures):
            future.result()
        sharded.receive(stream[-1])
        assert len(home.futures) == 1
        sharded.drain()
        assert delivered[7] == payloads
        reports = sharded.shutdown()
        assert all(report == [] for report in reports.values())

    def test_policy_driven_rebalance_end_to_end(self):
        # Skew every packet onto one shard, let the policy see it at
        # train boundaries, and require a committed migration that
        # moves real traffic while delivery stays exactly-once.
        policy = RebalancePolicy(
            threshold=1.3, goal=1.15, half_life=0.05, min_packets=32,
        )
        ing = make_ingress(
            shards=4, steer=True, max_train=8, train_window=1e-3,
            rebalance=policy, buckets_per_shard=8,
        )
        delivered: dict[int, list[bytes]] = {}
        # Eight flows that all hash to the same home shard.
        home = shard_index("alf", 1, 4)
        flows = [f for f in range(1, 200)
                 if shard_index("alf", f, 4) == home][:8]
        receivers = {}
        for fid in flows:
            _, receivers[fid] = bind_flow(ing.sharded, fid, delivered)
            ing.sharded.register_flow(PROTOCOL, fid, receivers[fid])
        waves = {
            fid: adu_packets(fid, [adu_payload(fid * 100 + i, 64)
                                   for i in range(12)])
            for fid in flows
        }
        for round_no in range(12):
            for fid in flows:
                ing.a.send(waves[fid][round_no])
        ing.loop.run()
        ing.sharded.drain()
        snap = ing.sharded.snapshot()
        assert snap["demux"]["migrations"] >= 1
        assert snap["steering"]["remaps"] >= 1
        # Traffic genuinely spread: the home shard no longer owns every
        # registered flow.
        assert any(
            receivers[fid].host is not ing.sharded.shards[home].host
            for fid in flows
        )
        for fid in flows:
            assert len(delivered[fid]) == 12
            assert len(set(delivered[fid])) == 12
        reports = ing.sharded.shutdown()
        assert all(report == [] for report in reports.values())
