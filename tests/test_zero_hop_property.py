"""Property: steered ingress delivers exactly what front-end demux does.

The zero-hop path is a placement optimization, never a semantic change.
For any mix of flows, loss, corruption, duplication, reordering and
train boundaries — and even with a bucket migration forced between the
first and second half of the run — a seeded steered run delivers the
exact same ADU bytes, each at most once, as the same run demuxed
per-packet through the front end.  Serial and threaded shards both.

ADUs stay single-fragment (payloads below the MTU) so a lost packet is
a lost ADU in both modes and the comparison stays crisp.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.machine.accounting import ShardCounters
from repro.net.shard import ShardedHost
from repro.net.topology import two_hosts
from repro.transport.alf.receiver import PROTOCOL

from tests.test_net_shard import adu_packets, adu_payload, bind_flow
from tests.test_packet_trains_property import assert_exactly_once, fingerprint


CASES = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=2**16),
        "n_flows": st.integers(min_value=1, max_value=4),
        "adus_per_flow": st.integers(min_value=2, max_value=6),
        "adu_bytes": st.integers(min_value=16, max_value=192),
        "loss_rate": st.sampled_from([0.0, 0.1, 0.3]),
        "corrupt_rate": st.sampled_from([0.0, 0.1, 0.3]),
        "duplicate_rate": st.sampled_from([0.0, 0.1]),
        "reorder_rate": st.sampled_from([0.0, 0.1]),
        "max_train": st.sampled_from([2, 3, 8, 16]),
        "train_window": st.sampled_from([1e-4, 1e-3, 1e-2]),
        "migrate": st.booleans(),
    }
)


def run_case(
    case: dict, steer: bool, max_train: int, threaded: bool
) -> dict:
    """One end-to-end run; returns per-flow delivered payload lists.

    ``case["migrate"]`` forces every flow's bucket one shard over
    between the two halves of the stream — through the safe commit
    path, so a flow mid-reassembly simply stays put.
    """
    path = two_hosts(
        seed=case["seed"],
        loss_rate=case["loss_rate"],
        corrupt_rate=case["corrupt_rate"],
        duplicate_rate=case["duplicate_rate"],
        reorder_rate=case["reorder_rate"],
        max_train=max_train,
        train_window=case["train_window"] if max_train > 1 else 0.0,
    )
    sharded = ShardedHost(
        path.b, 4, threaded=threaded, counters=ShardCounters()
    )
    sharded.attach_link(path.a_to_b, steer=steer and max_train > 1)
    delivered: dict[int, list[bytes]] = {}
    flows = list(range(1, case["n_flows"] + 1))
    streams = {}
    try:
        for flow_id in flows:
            _, receiver = bind_flow(sharded, flow_id, delivered)
            sharded.register_flow(PROTOCOL, flow_id, receiver)
            payloads = [
                adu_payload(1000 * flow_id + i, case["adu_bytes"])
                for i in range(case["adus_per_flow"])
            ]
            streams[flow_id] = adu_packets(flow_id, payloads)
        half = case["adus_per_flow"] // 2
        for round_no in range(half):
            for flow_id in flows:
                path.a.send(streams[flow_id][round_no])
        path.loop.run()
        sharded.drain()
        if case["migrate"]:
            for flow_id in flows:
                bucket = sharded.steering.bucket_of(PROTOCOL, flow_id)
                target = (sharded.steering.map[bucket] + 1) % 4
                sharded.migrate_bucket(bucket, target)
        for round_no in range(half, case["adus_per_flow"]):
            for flow_id in flows:
                path.a.send(streams[flow_id][round_no])
        path.loop.run()
        sharded.drain()
    finally:
        reports = sharded.shutdown()
        assert all(report == [] for report in reports.values())
    return delivered


@settings(max_examples=30, deadline=None)
@given(case=CASES)
def test_serial_steered_matches_front_demux(case):
    baseline = run_case(case, steer=False, max_train=1, threaded=False)
    steered = run_case(
        case, steer=True, max_train=case["max_train"], threaded=False
    )
    assert_exactly_once(baseline)
    assert_exactly_once(steered)
    assert fingerprint(steered) == fingerprint(baseline)


@settings(max_examples=10, deadline=None)
@given(case=CASES)
def test_threaded_steered_matches_front_demux(case):
    baseline = run_case(case, steer=False, max_train=1, threaded=False)
    steered = run_case(
        case, steer=True, max_train=case["max_train"], threaded=True
    )
    assert_exactly_once(steered)
    assert fingerprint(steered) == fingerprint(baseline)
