"""EventLoop heap compaction: cancelled timers must not accumulate.

Regression for the retransmit-timer leak: every ACK cancels and re-arms
the sender's coarse timer, and before compaction each cancelled entry
stayed in the heap until its (possibly distant) expiry surfaced it.
"""

from __future__ import annotations

from repro.sim.eventloop import EventLoop


def test_cancelled_events_do_not_fire():
    loop = EventLoop()
    fired = []
    event = loop.schedule(1.0, fired.append, "cancelled")
    loop.schedule(2.0, fired.append, "kept")
    event.cancel()
    loop.run()
    assert fired == ["kept"]


def test_cancel_is_idempotent():
    loop = EventLoop()
    event = loop.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()  # second cancel must not double-count
    assert loop.pending <= 1
    loop.run()


def test_many_cancelled_retransmit_timers_compact_the_heap():
    """The retransmit pattern: arm a long timer, cancel it, re-arm."""
    loop = EventLoop()
    fired = []
    # One live sentinel far in the future keeps the heap non-trivial.
    loop.schedule(1000.0, fired.append, "sentinel")
    for _ in range(10_000):
        timer = loop.schedule(500.0, fired.append, "timer")
        timer.cancel()
    # Without compaction all 10k dead entries would still be queued.
    assert loop.pending < 100
    assert loop.compactions > 0
    loop.run()
    assert fired == ["sentinel"]


def test_compaction_preserves_ordering_and_live_events():
    loop = EventLoop()
    fired = []
    for i in range(50):
        loop.schedule(float(100 + i), fired.append, i)
    # Cancel enough churn timers to force several compactions.
    for _ in range(1000):
        loop.schedule(50.0, fired.append, "dead").cancel()
    loop.run()
    assert fired == list(range(50))


def test_compaction_counter_stays_consistent_when_cancelled_events_pop():
    loop = EventLoop()
    # Cancel just under the compaction threshold so dead entries surface
    # through the heap pop path, then keep churning; the internal count
    # must not drift negative or trigger spurious compactions.
    survivors = []
    for i in range(8):
        loop.schedule(0.5 + i, survivors.append, i)
    for i in range(4):
        loop.schedule(0.1, survivors.append, "dead").cancel()
    loop.run(until=0.2)  # pops the cancelled entries
    assert loop._cancelled == 0
    loop.run()
    assert survivors == list(range(8))
