"""BER codec: known encodings, round trips, malformed input."""

import pytest

from repro.errors import DecodeError
from repro.presentation.abstract import (
    ArrayOf,
    Boolean,
    Field,
    Int32,
    OctetString,
    Struct,
    UInt32,
    Utf8String,
)
from repro.presentation.ber import (
    BerCodec,
    decode_length,
    encode_integer_content,
    encode_length,
)

codec = BerCodec()


class TestKnownEncodings:
    """Byte-exact vectors against the BER specification."""

    def test_boolean(self):
        assert codec.encode(True, Boolean()) == bytes([0x01, 0x01, 0xFF])
        assert codec.encode(False, Boolean()) == bytes([0x01, 0x01, 0x00])

    def test_small_integer(self):
        assert codec.encode(5, Int32()) == bytes([0x02, 0x01, 0x05])

    def test_zero(self):
        assert codec.encode(0, Int32()) == bytes([0x02, 0x01, 0x00])

    def test_negative_one(self):
        assert codec.encode(-1, Int32()) == bytes([0x02, 0x01, 0xFF])

    def test_sign_bit_needs_leading_zero(self):
        assert codec.encode(128, Int32()) == bytes([0x02, 0x02, 0x00, 0x80])

    def test_minimal_negative(self):
        assert codec.encode(-128, Int32()) == bytes([0x02, 0x01, 0x80])

    def test_octet_string(self):
        assert codec.encode(b"hi", OctetString()) == bytes([0x04, 0x02]) + b"hi"

    def test_sequence(self):
        point = Struct((Field("x", Int32()), Field("y", Int32())))
        encoded = codec.encode({"x": 1, "y": 2}, point)
        assert encoded == bytes(
            [0x30, 0x06, 0x02, 0x01, 0x01, 0x02, 0x01, 0x02]
        )


class TestLengths:
    def test_short_form(self):
        assert encode_length(0) == b"\x00"
        assert encode_length(127) == b"\x7f"

    def test_long_form(self):
        assert encode_length(128) == bytes([0x81, 0x80])
        assert encode_length(300) == bytes([0x82, 0x01, 0x2C])

    def test_roundtrip(self):
        for n in (0, 1, 127, 128, 255, 256, 65535, 10**6):
            encoded = encode_length(n)
            decoded, consumed = decode_length(encoded, 0)
            assert (decoded, consumed) == (n, len(encoded))

    def test_indefinite_rejected(self):
        with pytest.raises(DecodeError, match="indefinite"):
            decode_length(b"\x80", 0)


class TestIntegerContent:
    def test_minimality(self):
        for value in (0, 1, -1, 127, 128, -128, -129, 2**31 - 1, -(2**31)):
            content = encode_integer_content(value)
            # No redundant leading octet.
            if len(content) > 1:
                assert not (
                    (content[0] == 0x00 and not content[1] & 0x80)
                    or (content[0] == 0xFF and content[1] & 0x80)
                )


class TestRoundTrips:
    def test_record(self):
        schema = Struct(
            (
                Field("id", UInt32()),
                Field("name", Utf8String()),
                Field("data", ArrayOf(Int32())),
            )
        )
        value = {"id": 4_000_000_000, "name": "héllo wörld", "data": [-5, 0, 7]}
        assert codec.roundtrip(value, schema) == value

    def test_uint32_high_bit(self):
        assert codec.roundtrip(2**32 - 1, UInt32()) == 2**32 - 1

    def test_empty_array(self):
        assert codec.roundtrip([], ArrayOf(Int32())) == []

    def test_nested_arrays(self):
        schema = ArrayOf(ArrayOf(Int32()))
        assert codec.roundtrip([[1], [], [2, 3]], schema) == [[1], [], [2, 3]]

    def test_empty_octets(self):
        assert codec.roundtrip(b"", OctetString()) == b""


class TestMalformed:
    def test_wrong_tag(self):
        with pytest.raises(DecodeError, match="tag"):
            codec.decode(bytes([0x04, 0x01, 0x00]), Int32())

    def test_truncated_content(self):
        with pytest.raises(DecodeError, match="truncated"):
            codec.decode(bytes([0x02, 0x05, 0x00]), Int32())

    def test_trailing_garbage(self):
        with pytest.raises(DecodeError, match="trailing"):
            codec.decode(bytes([0x02, 0x01, 0x05, 0xFF]), Int32())

    def test_empty_input(self):
        with pytest.raises(DecodeError):
            codec.decode(b"", Int32())

    def test_bad_boolean_length(self):
        with pytest.raises(DecodeError):
            codec.decode(bytes([0x01, 0x02, 0x00, 0x00]), Boolean())

    def test_bad_utf8(self):
        with pytest.raises(DecodeError, match="UTF-8"):
            codec.decode(bytes([0x0C, 0x01, 0xFF]), Utf8String())

    def test_fixed_count_mismatch(self):
        encoded = codec.encode([1, 2, 3], ArrayOf(Int32()))
        with pytest.raises(DecodeError, match="expected 2"):
            codec.decode(encoded, ArrayOf(Int32(), fixed_count=2))

    def test_sequence_short_of_fields(self):
        point = Struct((Field("x", Int32()), Field("y", Int32())))
        only_x = codec.encode([1], ArrayOf(Int32()))
        with pytest.raises(DecodeError):
            codec.decode(only_x, point)


class TestLayout:
    def test_extents_cover_leaves_in_order(self):
        schema = Struct((Field("a", Int32()), Field("b", OctetString())))
        data, extents = codec.encode_with_layout({"a": 1, "b": b"zz"}, schema)
        assert [e.path for e in extents] == [("a",), ("b",)]
        # Extents tile the content after the SEQUENCE header.
        assert extents[0].start == 2
        assert extents[-1].end == len(data)

    def test_nested_layout_offsets_shift(self):
        schema = ArrayOf(ArrayOf(Int32()))
        data, extents = codec.encode_with_layout([[1, 2]], schema)
        for extent in extents:
            piece = data[extent.start : extent.end]
            assert piece[0] == 0x02  # each leaf slice starts at its own TLV
