"""Harness containers, table/series rendering, report generation, and
workload determinism."""

import pytest

from repro.bench.harness import ExperimentResult, Row, format_table, render_series
from repro.bench.workloads import (
    PACKET_BYTES,
    file_payload,
    integer_array,
    octet_payload,
)


@pytest.fixture
def sample_result():
    return ExperimentResult(
        "X1",
        "A sample experiment",
        [
            Row("alpha", measured=10.0, paper=12.0),
            Row("beta", measured=5.0, unit="x", extra={"k": 1}),
        ],
        notes="for testing",
    )


class TestRows:
    def test_row_lookup(self, sample_result):
        assert sample_result.row("alpha").paper == 12.0
        assert sample_result.measured("beta") == 5.0

    def test_missing_row(self, sample_result):
        with pytest.raises(KeyError):
            sample_result.row("gamma")


class TestTable:
    def test_format_contains_everything(self, sample_result):
        text = format_table(sample_result)
        assert "[X1]" in text
        assert "A sample experiment" in text
        assert "alpha" in text and "12.00" in text and "10.00" in text
        assert "k=1" in text
        assert "note: for testing" in text

    def test_missing_paper_renders_dash(self, sample_result):
        lines = format_table(sample_result).splitlines()
        beta_line = next(line for line in lines if "beta" in line)
        assert " - " in beta_line or "-" in beta_line.split()

    def test_format_method_delegates(self, sample_result):
        assert sample_result.format() == format_table(sample_result)


class TestSeries:
    def test_bars_scale_to_peak(self, sample_result):
        text = render_series(sample_result, width=10)
        lines = text.splitlines()
        alpha_bar = lines[1].count("#")
        beta_bar = lines[2].count("#")
        assert alpha_bar == 10
        assert beta_bar == 5

    def test_label_filter(self, sample_result):
        text = render_series(sample_result, label_filter="alpha")
        assert "alpha" in text and "beta" not in text

    def test_filter_without_match(self, sample_result):
        assert "no rows match" in render_series(sample_result, label_filter="zz")

    def test_all_zero_rows(self):
        result = ExperimentResult("X2", "zeros", [Row("a", measured=0.0)])
        text = render_series(result)
        assert "#" not in text


class TestWorkloads:
    def test_packet_constant(self):
        assert PACKET_BYTES == 4000

    def test_integer_array_deterministic(self):
        assert integer_array(10, seed=3) == integer_array(10, seed=3)
        assert integer_array(10, seed=3) != integer_array(10, seed=4)

    def test_integers_in_range(self):
        for value in integer_array(200):
            assert -(2**31) <= value <= 2**31 - 1

    def test_payloads_deterministic(self):
        assert octet_payload(64, seed=1) == octet_payload(64, seed=1)
        assert file_payload(64, seed=1) == file_payload(64, seed=1)
        assert octet_payload(64, seed=1) != octet_payload(64, seed=2)

    def test_lengths(self):
        assert len(octet_payload(123)) == 123
        assert len(file_payload(0)) == 0


class TestReport:
    def test_render_contains_every_catalog_id(self):
        # Rendering the full battery is slow; check structure on the
        # preamble and the figure-set constant instead.
        from repro.bench import report

        assert "F1" in report._FIGURES
        assert "paper vs. measured" in report._PREAMBLE

    def test_main_writes_file(self, tmp_path, capsys):
        # Patch all_experiments to keep the test fast.
        from repro.bench import report
        from repro.bench.harness import ExperimentResult, Row

        original = report.all_experiments
        report.all_experiments = lambda: [
            ExperimentResult("F1", "tiny", [Row("r", measured=1.0)])
        ]
        try:
            target = tmp_path / "OUT.md"
            assert report.main([str(target)]) == 0
            text = target.read_text()
            assert "[F1] tiny" in text
            assert "|" in text  # the figure rendering
        finally:
            report.all_experiments = original
