"""Host-level shared drain engine: cross-flow batching from demux to delivery."""

from __future__ import annotations

import random

import pytest

from repro.buffers import BufferPool
from repro.core.adu import Adu, fragment_adu
from repro.errors import TransportError
from repro.machine.accounting import DrainCounters
from repro.net.host import Host
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.topology import two_hosts
from repro.sim.eventloop import EventLoop
from repro.stages.checksum import internet_checksum
from repro.stages.encrypt import WordXorStage
from repro.transport.alf import AlfReceiver, AlfSender
from repro.transport.alf.receiver import PROTOCOL
from repro.transport.drain import SharedDrainEngine

KEY = 0x0BADF00D


def adu_payload(seed: int, n_bytes: int = 256) -> bytes:
    return random.Random(seed).randbytes(n_bytes)


def encrypted_packets(flow_id, payloads, mtu=2048, key=KEY):
    """The wire stream an encrypting sender emits for one flow: the
    ciphertext fragments, checksummed over the ciphertext."""
    cipher = WordXorStage(key)
    packets = []
    for sequence, payload in enumerate(payloads):
        ciphertext = cipher.apply(payload)
        checksum = internet_checksum(ciphertext)
        adu = Adu(sequence=sequence, payload=ciphertext, name={"i": sequence})
        for fragment in fragment_adu(adu, mtu, checksum=checksum):
            packets.append(
                Packet(
                    src="a",
                    dst="b",
                    protocol=PROTOCOL,
                    flow_id=flow_id,
                    header=AlfSender._fragment_header(fragment),
                    payload=fragment.payload,
                )
            )
    return packets


def make_env(n_flows=3, engine_kwargs=None, receiver_kwargs=None):
    """An engine plus ``n_flows`` registered encrypted receivers on one
    host (fed synthetically; the loop only runs in the timing tests)."""
    path = two_hosts(seed=2)
    engine = SharedDrainEngine(
        path.loop, counters=DrainCounters(), **(engine_kwargs or {})
    )
    delivered = {}
    receivers = []
    for flow_id in range(1, n_flows + 1):
        receivers.append(
            AlfReceiver(
                path.loop,
                path.b,
                "a",
                flow_id,
                deliver=lambda d, fid=flow_id: delivered.setdefault(
                    fid, {}
                ).__setitem__(d.sequence, bytes(d.payload)),
                zero_copy=False,
                encryption=KEY,
                drain_engine=engine,
                **(receiver_kwargs or {}),
            )
        )
    return path, engine, receivers, delivered


class TestGrouping:
    def test_same_shape_flows_share_one_group(self):
        path, engine, receivers, _ = make_env(n_flows=3)
        assert engine.flow_count == 3
        assert engine.group_count == 1

    def test_different_cipher_splits_groups(self):
        path, engine, receivers, _ = make_env(n_flows=2)
        AlfReceiver(
            path.loop, path.b, "a", 9,
            deliver=lambda d: None,
            zero_copy=False,
            drain_engine=engine,  # cleartext: different plan shape
        )
        assert engine.flow_count == 3
        assert engine.group_count == 2

    def test_duplicate_register_rejected(self):
        path, engine, receivers, _ = make_env(n_flows=1)
        with pytest.raises(TransportError):
            engine.register(receivers[0])

    def test_notify_requires_registration(self):
        path, engine, receivers, _ = make_env(n_flows=1)
        stranger = AlfReceiver(
            path.loop, path.b, "a", 55,
            deliver=lambda d: None, zero_copy=False, batch_drain=True,
        )
        with pytest.raises(TransportError):
            engine.notify_ready(stranger)

    def test_unregister_empties_group(self):
        path, engine, receivers, _ = make_env(n_flows=2)
        for receiver in receivers:
            engine.unregister(receiver)
        assert engine.flow_count == 0
        assert engine.group_count == 0
        engine.unregister(receivers[0])  # idempotent


class TestCrossFlowDispatch:
    def test_one_dispatch_covers_all_flows(self):
        path, engine, receivers, delivered = make_env(n_flows=3)
        payloads = {
            r.flow_id: [adu_payload(10 * r.flow_id + i) for i in range(4)]
            for r in receivers
        }
        for receiver in receivers:
            for packet in encrypted_packets(receiver.flow_id, payloads[receiver.flow_id]):
                path.b.receive(packet)
        assert engine.pending_rows == 12
        assert engine.flush() == 12
        counters = engine.counters
        assert counters.dispatches == 1
        assert counters.rows_dispatched == 12
        assert counters.cross_flow_batches == 1
        assert counters.epochs == 1
        assert counters.rows_per_dispatch == 12.0
        assert engine.delivered_total == 12
        for receiver in receivers:
            rows = delivered[receiver.flow_id]
            assert [rows[i] for i in range(4)] == payloads[receiver.flow_id]

    def test_max_rows_splits_epoch_round_robin(self):
        path, engine, receivers, delivered = make_env(
            n_flows=2, engine_kwargs={"max_rows": 4}
        )
        flow_a, flow_b = receivers
        a_payloads = [adu_payload(100 + i) for i in range(6)]
        b_payloads = [adu_payload(200 + i) for i in range(2)]
        for packet in encrypted_packets(flow_a.flow_id, a_payloads):
            path.b.receive(packet)
        for packet in encrypted_packets(flow_b.flow_id, b_payloads):
            path.b.receive(packet)
        assert engine.flush() == 8
        counters = engine.counters
        assert counters.dispatches == 2
        # Fairness: the first (capped) dispatch interleaved both flows
        # round-robin instead of draining the deep flow first.
        assert counters.cross_flow_batches == 1
        assert counters.fairness_stalls == 1
        assert [delivered[flow_a.flow_id][i] for i in range(6)] == a_payloads
        assert [delivered[flow_b.flow_id][i] for i in range(2)] == b_payloads

    def test_exactly_once_under_duplicate_arrivals(self):
        path, engine, receivers, delivered = make_env(n_flows=2)
        payloads = {r.flow_id: [adu_payload(300 + r.flow_id)] for r in receivers}
        packets = [
            packet
            for receiver in receivers
            for packet in encrypted_packets(receiver.flow_id, payloads[receiver.flow_id])
        ]
        for packet in packets:
            path.b.receive(packet)
        assert engine.flush() == 2
        # The same wire stream again: every fragment is a duplicate of a
        # delivered ADU and must not produce a second delivery.
        for packet in packets:
            path.b.receive(packet.copy())
        assert engine.flush() == 0
        assert engine.delivered_total == 2
        for receiver in receivers:
            assert list(delivered[receiver.flow_id]) == [0]
            assert receiver.stats.duplicates_discarded == 1

    def test_corruption_penalizes_only_the_owning_flow(self):
        path, engine, receivers, delivered = make_env(n_flows=2)
        good, victim = receivers
        good_payloads = [adu_payload(400 + i) for i in range(2)]
        victim_payloads = [adu_payload(500 + i) for i in range(2)]
        for packet in encrypted_packets(good.flow_id, good_payloads):
            path.b.receive(packet)
        victim_packets = encrypted_packets(victim.flow_id, victim_payloads)
        # Corrupt the second ADU on the wire: advertised checksum no
        # longer matches the ciphertext.
        victim_packets[1].header["adu_csum"] = (
            victim_packets[1].header["adu_csum"] + 1
        ) & 0xFFFF
        for packet in victim_packets:
            path.b.receive(packet)
        assert engine.flush() == 3
        assert engine.counters.corrupt_rows == 1
        assert victim.stats.checksum_failures == 1
        assert good.stats.checksum_failures == 0
        assert [delivered[good.flow_id][i] for i in range(2)] == good_payloads
        assert list(delivered[victim.flow_id]) == [0]
        assert delivered[victim.flow_id][0] == victim_payloads[0]


class TestFlushPolicy:
    def test_deadline_flush_waits_max_delay(self):
        path, engine, receivers, delivered = make_env(
            n_flows=1, engine_kwargs={"max_delay": 0.02}
        )
        packets = encrypted_packets(1, [adu_payload(600)])

        def feed():
            for packet in packets:
                path.b.receive(packet)

        path.loop.schedule(0.001, feed)
        path.loop.run(until=0.01)
        assert delivered.get(1) is None  # epoch still pending
        assert engine.pending_rows == 1
        path.loop.run(until=0.05)
        assert list(delivered[1]) == [0]

    def test_backlog_at_max_rows_flushes_immediately(self):
        path, engine, receivers, delivered = make_env(
            n_flows=1, engine_kwargs={"max_delay": 10.0, "max_rows": 2}
        )
        packets = encrypted_packets(1, [adu_payload(700 + i) for i in range(2)])

        def feed():
            for packet in packets:
                path.b.receive(packet)

        path.loop.schedule(0.001, feed)
        path.loop.run(until=0.01)  # far before the 10 s deadline
        assert sorted(delivered[1]) == [0, 1]

    def test_invalid_configuration_rejected(self):
        loop = EventLoop()
        with pytest.raises(TransportError):
            SharedDrainEngine(loop, max_rows=0)
        with pytest.raises(TransportError):
            SharedDrainEngine(loop, max_delay=-1.0)


class TestTeardown:
    def make_pooled_env(self):
        loop = EventLoop()
        a = Host(loop, "a")
        pool = BufferPool(64, 4096, label="rx")
        b = Host(loop, "b", rx_pool=pool)
        link_ab = Link(loop, random.Random(3))
        link_ba = Link(loop, random.Random(4))
        a.add_link("b", link_ab)
        b.add_link("a", link_ba)
        link_ab.connect(b.receive)
        link_ba.connect(a.receive)
        engine = SharedDrainEngine(loop, counters=DrainCounters())
        receivers = [
            AlfReceiver(
                loop, b, "a", flow_id,
                deliver=lambda d: None,
                zero_copy=True,
                encryption=KEY,
                drain_engine=engine,
            )
            for flow_id in (1, 2)
        ]
        return b, pool, engine, receivers

    def test_shutdown_mid_drain_leaves_pool_clean(self):
        b, pool, engine, receivers = self.make_pooled_env()
        # Ready rows queued on both flows (chains over pooled segments),
        # plus a half-reassembled ADU on flow 1 — a drain is due but has
        # not run when the host tears the engine down.
        for receiver in receivers:
            for packet in encrypted_packets(
                receiver.flow_id, [adu_payload(800 + receiver.flow_id + i) for i in range(2)]
            ):
                b.receive(packet)
        straggler = encrypted_packets(1, [adu_payload(900, n_bytes=4096)], mtu=1024)
        for packet in straggler[:2]:  # 2 of 4 fragments: stays partial
            b.receive(packet)
        assert engine.pending_rows == 4
        assert pool.snapshot()["in_use"] > 0
        engine.shutdown()
        assert engine.flow_count == 0
        assert engine.pending_rows == 0
        for receiver in receivers:
            receiver.close()
        assert pool.snapshot()["in_use"] == 0
        assert pool.leak_report() == []

    def test_closed_receiver_leaves_engine_and_host(self):
        b, pool, engine, receivers = self.make_pooled_env()
        receivers[0].close()
        receivers[0].close()  # idempotent
        assert engine.flow_count == 1
        # The flow's binding is gone: its packets are now undeliverable
        # and their DMA chains must be released, not leaked.
        for packet in encrypted_packets(1, [adu_payload(950)]):
            b.receive(packet)
        assert b.undeliverable == 1
        assert pool.snapshot()["in_use"] == 0
        assert pool.leak_report() == []

    def test_engine_reusable_after_shutdown(self):
        path, engine, receivers, delivered = make_env(n_flows=1)
        engine.shutdown()
        assert engine.flow_count == 0
        engine.register(receivers[0])
        payloads = [adu_payload(990)]
        for packet in encrypted_packets(1, payloads):
            path.b.receive(packet)
        assert engine.flush() == 1
        assert delivered[1][0] == payloads[0]


class TestSnapshot:
    def test_snapshot_reports_engine_state(self):
        path, engine, receivers, _ = make_env(n_flows=2)
        for packet in encrypted_packets(1, [adu_payload(42)]):
            path.b.receive(packet)
        snap = engine.snapshot()
        assert snap["flows"] == 2
        assert snap["plan_groups"] == 1
        assert snap["pending_rows"] == 1
        assert snap["delivered_total"] == 0
        assert snap["dispatches"] == 0
        engine.flush()
        snap = engine.snapshot()
        assert snap["pending_rows"] == 0
        assert snap["delivered_total"] == 1
        assert snap["rows_per_dispatch"] == 1.0


class TestConcurrentSnapshot:
    def test_snapshot_waits_for_inflight_flush(self):
        """A reader must never observe a half-mutated backlog.

        The flush thread blocks *inside* a deliver callback (mid
        ``_flush_epoch``, engine mutex held); only then does the reader
        thread call ``snapshot()``.  A correct engine holds the reader
        until the epoch completes, so the snapshot always reflects the
        post-flush state — never pending rows that are already being
        dispatched.  Ordering is driven entirely by events, no sleeps.
        """
        import threading

        path = two_hosts(seed=9)
        engine = SharedDrainEngine(path.loop, counters=DrainCounters())
        in_deliver = threading.Event()
        release = threading.Event()

        def deliver(adu):
            in_deliver.set()
            assert release.wait(timeout=5.0)

        AlfReceiver(
            path.loop, path.b, "a", 1,
            deliver=deliver,
            zero_copy=False,
            encryption=KEY,
            drain_engine=engine,
        )
        for packet in encrypted_packets(1, [adu_payload(4321)]):
            path.b.receive(packet)
        assert engine.pending_rows == 1

        snap: dict[str, object] = {}

        def read_snapshot():
            in_deliver.wait(timeout=5.0)
            snap.update(engine.snapshot())

        flusher = threading.Thread(target=engine.flush)
        reader = threading.Thread(target=read_snapshot)
        flusher.start()
        reader.start()
        # The flush is now parked inside deliver with the mutex held;
        # the reader is at (or past) the snapshot call.  Release the
        # flush and let both finish.
        assert in_deliver.wait(timeout=5.0)
        release.set()
        flusher.join(timeout=5.0)
        reader.join(timeout=5.0)
        assert not flusher.is_alive() and not reader.is_alive()
        assert snap["pending_rows"] == 0
        assert snap["delivered_total"] == 1
        assert snap["dispatches"] == 1

    def test_notify_scan_counters_are_deterministic(self):
        path, engine, receivers, _ = make_env(n_flows=3)
        payloads = {r.flow_id: [adu_payload(60 + r.flow_id)] for r in receivers}
        for receiver in receivers:
            for packet in encrypted_packets(receiver.flow_id, payloads[receiver.flow_id]):
                path.b.receive(packet)
        counters = engine.counters
        # One backlog scan per completed ADU, each walking all 3 flows.
        assert counters.notify_scans == 3
        assert counters.scan_visits == 9
        snap = counters.snapshot()
        assert snap["notify_scans"] == 3
        assert snap["scan_visits"] == 9
