"""Links: timing, loss, reordering, duplication — all deterministic."""

import pytest

from repro.errors import NetworkError
from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.eventloop import EventLoop
from repro.sim.rng import RngStreams


def make_link(loop, **kwargs):
    rng = RngStreams(kwargs.pop("seed", 0)).stream("link")
    return Link(loop, rng, **kwargs)


def packet(n=0, size=960):
    return Packet(src="a", dst="b", protocol="t", flow_id=1,
                  header={"n": n}, payload=bytes(size))


def test_requires_receiver():
    loop = EventLoop()
    link = make_link(loop)
    with pytest.raises(NetworkError, match="no receiver"):
        link.send(packet())


def test_delivery_timing():
    """arrival = serialization + propagation."""
    loop = EventLoop()
    link = make_link(loop, bandwidth_bps=1e6, propagation_delay=0.5)
    arrivals = []
    link.connect(lambda p: arrivals.append(loop.now))
    link.send(packet(size=960))  # 1000B wire = 8000 bits = 8ms at 1 Mb/s
    loop.run()
    assert arrivals[0] == pytest.approx(0.008 + 0.5)


def test_serialization_queues_back_to_back():
    loop = EventLoop()
    link = make_link(loop, bandwidth_bps=1e6, propagation_delay=0.0)
    arrivals = []
    link.connect(lambda p: arrivals.append(loop.now))
    link.send(packet(0))
    link.send(packet(1))
    loop.run()
    assert arrivals[1] - arrivals[0] == pytest.approx(0.008)


def test_loss_is_statistical_and_counted():
    loop = EventLoop()
    link = make_link(loop, loss_rate=0.3, seed=5)
    got = []
    link.connect(got.append)
    for n in range(500):
        link.send(packet(n, size=10))
    loop.run()
    assert link.stats.lost + len(got) == 500
    assert 0.2 < link.stats.lost / 500 < 0.4


def test_zero_loss_delivers_everything():
    loop = EventLoop()
    link = make_link(loop)
    got = []
    link.connect(got.append)
    for n in range(100):
        link.send(packet(n, size=10))
    loop.run()
    assert len(got) == 100
    assert [p.header["n"] for p in got] == list(range(100))


def test_determinism_across_runs():
    def run(seed):
        loop = EventLoop()
        link = make_link(loop, loss_rate=0.2, seed=seed)
        got = []
        link.connect(lambda p: got.append(p.header["n"]))
        for n in range(100):
            link.send(packet(n, size=10))
        loop.run()
        return got

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_duplication():
    loop = EventLoop()
    link = make_link(loop, duplicate_rate=1.0, seed=1)
    got = []
    link.connect(got.append)
    link.send(packet(0, size=10))
    loop.run()
    assert len(got) == 2
    assert link.stats.duplicated == 1
    # The duplicate is a distinct packet object with a fresh id.
    assert got[0].packet_id != got[1].packet_id


def test_reordering_delays_marked_packets():
    loop = EventLoop()
    link = make_link(
        loop, reorder_rate=1.0, propagation_delay=0.01,
        reorder_extra_delay=5.0, seed=2,
    )
    got = []
    link.connect(lambda p: got.append(loop.now))
    link.send(packet(0, size=10))
    loop.run()
    assert got[0] > 0.05  # held well past one propagation delay
    assert link.stats.reordered == 1


def test_mtu_enforced():
    loop = EventLoop()
    link = make_link(loop, mtu=100)
    link.connect(lambda p: None)
    with pytest.raises(NetworkError, match="MTU"):
        link.send(packet(size=200))


def test_parameter_validation():
    loop = EventLoop()
    rng = RngStreams(0).stream("x")
    with pytest.raises(NetworkError):
        Link(loop, rng, bandwidth_bps=0)
    with pytest.raises(NetworkError):
        Link(loop, rng, loss_rate=1.5)
    with pytest.raises(NetworkError):
        Link(loop, rng, propagation_delay=-1)


def test_byte_counters():
    loop = EventLoop()
    link = make_link(loop)
    link.connect(lambda p: None)
    link.send(packet(size=60))  # 100 wire bytes with the 40B header
    loop.run()
    assert link.stats.bytes_sent == 100
    assert link.stats.bytes_delivered == 100
