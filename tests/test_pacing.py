"""Rate-paced train shaping and the drain-pressure backpressure loop."""

from __future__ import annotations

import random

import pytest

from repro.bench.workloads import octet_payload
from repro.core.adu import Adu
from repro.errors import NetworkError, TransportError
from repro.machine.accounting import PacingCounters, train_counters
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.switch import StoreAndForwardSwitch, SwitchStats
from repro.net.topology import two_hosts
from repro.presentation.abstract import ArrayOf, Int32
from repro.sim.eventloop import EventLoop
from repro.sim.rng import RngStreams
from repro.transport.alf import AlfReceiver, AlfSender, RecoveryMode
from repro.transport.drain import SharedDrainEngine
from repro.transport.pacing import (
    PRESSURE_HIGH,
    PRESSURE_LOW,
    PRESSURE_MAX,
    TrainPacer,
    quantize_pressure,
)
from repro.transport.session import (
    SessionConfig,
    SessionInitiator,
    SessionListener,
)


def wire_packet(n=0, size=960, src="a", dst="b", flow=1, tag=None):
    header = {"n": n, "adu_seq": n}
    if tag is not None:
        header["train"] = tag
    return Packet(src=src, dst=dst, protocol="t", flow_id=flow,
                  header=header, payload=bytes(size))


def make_pacer(loop=None, **kwargs):
    loop = loop or EventLoop()
    sent = []
    kwargs.setdefault("rate_bytes_per_s", 1e6)
    kwargs.setdefault("target_train", 4)
    kwargs.setdefault("mtu", 1000)
    kwargs.setdefault("counters", PacingCounters())
    pacer = TrainPacer(loop, send=sent.append, **kwargs)
    return loop, pacer, sent


class TestQuantizePressure:
    def test_idle_is_zero(self):
        assert quantize_pressure(0.0, 64) == 0
        assert quantize_pressure(-3.0, 64) == 0
        assert quantize_pressure(10.0, 0) == 0

    def test_ramp_rows_maps_to_high_threshold(self):
        # The EWMA at which adaptive epochs hit their configured window
        # quantizes exactly to the back-off threshold.
        assert quantize_pressure(64.0, 64) == PRESSURE_HIGH

    def test_monotonic_and_saturating(self):
        previous = 0
        for ewma in range(0, 200, 5):
            quantum = quantize_pressure(float(ewma), 64)
            assert quantum >= previous
            assert 0 <= quantum <= PRESSURE_MAX
            previous = quantum
        assert quantize_pressure(1e9, 64) == PRESSURE_MAX


class TestTrainPacerValidation:
    def test_rejects_bad_parameters(self):
        loop = EventLoop()
        with pytest.raises(TransportError):
            TrainPacer(loop, rate_bytes_per_s=0)
        with pytest.raises(TransportError):
            TrainPacer(loop, target_train=0)
        with pytest.raises(TransportError):
            TrainPacer(loop, bucket_trains=0.5)
        with pytest.raises(TransportError):
            TrainPacer(loop, aimd_backoff=1.5)
        with pytest.raises(TransportError):
            TrainPacer(loop, high_pressure=2, low_pressure=5)

    def test_submit_without_send_raises(self):
        pacer = TrainPacer(EventLoop())
        with pytest.raises(TransportError, match="no send callback"):
            pacer.submit(wire_packet())

    def test_seed_rate_installs_and_clamps(self):
        pacer = TrainPacer(
            EventLoop(),
            min_rate_bytes_per_s=1_000.0,
            max_rate_bytes_per_s=1e6,
        )
        assert pacer.seed_rate(50_000.0) == 50_000.0
        assert pacer.rate_bytes_per_s == 50_000.0
        assert pacer.seed_rate(10.0) == 1_000.0  # clamped up
        assert pacer.seed_rate(1e12) == 1e6  # clamped down
        assert pacer.rate_bytes_per_s == 1e6


class TestTrainAlignedRelease:
    def test_batch_leaves_as_full_trains_never_singles(self):
        loop, pacer, sent = make_pacer()
        for n in range(8):
            pacer.submit(wire_packet(n=n))
        loop.run()
        assert len(sent) == 8
        # Two full trains of target length, tagged distinctly, each
        # stamped with its length — no leading or trailing singletons.
        tags = [p.header["train"] for p in sent]
        assert tags == [tags[0]] * 4 + [tags[4]] * 4
        assert tags[0] != tags[4]
        assert all(p.header["train_len"] == 4 for p in sent)
        assert pacer.trains == 2
        assert pacer.counters.snapshot()["full_trains"] == 2

    def test_train_leaves_back_to_back_at_one_instant(self):
        loop = EventLoop()
        sent = []
        pacer = TrainPacer(
            loop, rate_bytes_per_s=1e6, target_train=4, mtu=1000,
            counters=PacingCounters(),
            send=lambda p: sent.append((loop.now, p)),
        )
        for n in range(4):
            pacer.submit(wire_packet(n=n))
        loop.run()
        times = {t for t, _ in sent}
        assert len(times) == 1  # the whole train at one release instant

    def test_tail_shorter_than_target_still_leaves(self):
        loop, pacer, sent = make_pacer()
        for n in range(6):
            pacer.submit(wire_packet(n=n))
        loop.run()
        assert [p.header["train_len"] for p in sent] == [4] * 4 + [2] * 2
        snap = pacer.counters.snapshot()
        assert snap["trains_released"] == 2
        assert snap["full_trains"] == 1

    def test_rate_spaces_trains_past_the_bucket(self):
        # Bucket holds two trains' credit; the third train must wait
        # for the token bucket to refill at the configured rate.
        loop = EventLoop()
        sent = []
        pacer = TrainPacer(
            loop, rate_bytes_per_s=100_000.0, target_train=4, mtu=1000,
            bucket_trains=2.0, counters=PacingCounters(),
            send=lambda p: sent.append((loop.now, p)),
        )
        for n in range(12):
            pacer.submit(wire_packet(n=n))
        loop.run()
        release_times = sorted({t for t, _ in sent})
        # Two trains ride the full bucket at t=0; the third waits for
        # one train's worth of credit (4 × 1000 wire bytes).
        assert release_times == [
            pytest.approx(0.0),
            pytest.approx(4 * 1000 / 100_000.0),
        ]
        assert sum(1 for t, _ in sent if t == 0.0) == 8
        assert pacer.counters.snapshot()["credit_stalls"] >= 1

    def test_holds_tracks_queued_adus(self):
        loop, pacer, sent = make_pacer(rate_bytes_per_s=1_000.0)
        pacer.submit(wire_packet(n=0))
        assert pacer.holds(1, 0)
        assert not pacer.holds(1, 1)
        assert not pacer.holds(2, 0)
        loop.run()
        assert not pacer.holds(1, 0)
        assert pacer.queued_packets == 0

    def test_flush_releases_everything_without_credit(self):
        loop, pacer, sent = make_pacer(rate_bytes_per_s=1.0)
        for n in range(10):
            pacer.submit(wire_packet(n=n))
        pacer.flush()
        assert len(sent) == 10
        assert pacer.queued_packets == 0


class TestAimdLoop:
    def test_low_pressure_raises_additively(self):
        loop, pacer, _ = make_pacer(
            rate_bytes_per_s=10_000.0, aimd_increase=500.0
        )
        pacer.on_pressure(PRESSURE_LOW)
        pacer.on_pressure(0)
        assert pacer.rate_bytes_per_s == pytest.approx(11_000.0)
        assert pacer.raises == 2

    def test_high_pressure_backs_off_multiplicatively(self):
        loop, pacer, _ = make_pacer(rate_bytes_per_s=10_000.0)
        pacer.on_pressure(PRESSURE_HIGH)
        assert pacer.rate_bytes_per_s == pytest.approx(5_000.0)
        assert pacer.backoffs == 1
        assert pacer.first_backoff_time == loop.now

    def test_holdoff_absorbs_one_ack_flight(self):
        # Many high-pressure ACKs inside one hold-off window trigger a
        # single back-off, not a geometric collapse.
        loop, pacer, _ = make_pacer(
            rate_bytes_per_s=10_000.0, backoff_interval=0.05
        )
        for _ in range(10):
            pacer.on_pressure(PRESSURE_MAX)
        assert pacer.backoffs == 1
        assert pacer.rate_bytes_per_s == pytest.approx(5_000.0)
        loop.schedule(0.06, lambda: None)
        loop.run()
        pacer.on_pressure(PRESSURE_MAX)
        assert pacer.backoffs == 2

    def test_mid_band_leaves_rate_alone(self):
        loop, pacer, _ = make_pacer(rate_bytes_per_s=10_000.0)
        pacer.on_pressure((PRESSURE_LOW + PRESSURE_HIGH) // 2 + 1)
        assert pacer.rate_bytes_per_s == pytest.approx(10_000.0)
        assert pacer.raises == 0 and pacer.backoffs == 0

    def test_rate_respects_bounds(self):
        loop, pacer, _ = make_pacer(
            rate_bytes_per_s=2_000.0,
            min_rate_bytes_per_s=1_500.0,
            max_rate_bytes_per_s=2_200.0,
            aimd_increase=1_000.0,
            backoff_interval=0.0,
        )
        pacer.on_pressure(PRESSURE_MAX)
        pacer.on_pressure(PRESSURE_MAX)
        assert pacer.rate_bytes_per_s == pytest.approx(1_500.0)
        pacer.on_pressure(0)
        assert pacer.rate_bytes_per_s == pytest.approx(2_200.0)

    def test_backoff_rearms_pending_release_at_new_rate(self):
        # A back-off landing while a release is armed must not let the
        # train leave on stale credit math.
        loop = EventLoop()
        sent = []
        pacer = TrainPacer(
            loop, rate_bytes_per_s=100_000.0, target_train=4, mtu=1000,
            bucket_trains=2.0, counters=PacingCounters(),
            send=lambda p: sent.append((loop.now, p)),
        )
        for n in range(12):
            pacer.submit(wire_packet(n=n))
        pacer.on_pressure(PRESSURE_MAX)  # halve the rate immediately
        loop.run()
        release_times = sorted({t for t, _ in sent})
        # The third train (past the bucket) waits at the *halved* rate.
        assert release_times[-1] == pytest.approx(4 * 1000 / 50_000.0)


class TestSenderPacing:
    def run_paced(self, n_adus=6, rate=2e6, **kwargs):
        path = two_hosts(seed=2, bandwidth_bps=50e6, pacing=True, rate=rate)
        got = {}
        receiver = AlfReceiver(
            path.loop, path.b, "a", 1,
            deliver=lambda d: got.setdefault(d.sequence, d),
            expected_adus=n_adus, ack_interval=0,
        )
        finished = []
        sender = AlfSender(
            path.loop, path.a, "b", 1,
            pacing=path.pacer,
            on_complete=lambda: finished.append(path.loop.now),
            **kwargs,
        )
        adus = [Adu(i, octet_payload(2500, seed=50 + i), {"i": i})
                for i in range(n_adus)]
        for adu in adus:
            sender.send_adu(adu)
        sender.close()
        path.loop.run(until=120.0)
        return path, sender, receiver, got, finished, adus

    def test_paced_transfer_completes_exactly(self):
        path, sender, receiver, got, finished, adus = self.run_paced()
        assert finished
        assert len(got) == len(adus)
        for adu in adus:
            assert bytes(got[adu.sequence].payload) == adu.payload
        assert path.pacer.trains > 0
        # Clean path: pacer delay must not fake losses into repairs.
        assert sender.stats.retransmissions == 0

    def test_pacer_held_adus_are_not_repaired_by_timer(self):
        # Rate so low the repair timer fires many times while fragments
        # still sit in the shaping queue: the holds() guard must keep
        # the timer from "repairing" never-sent data.
        path, sender, receiver, got, finished, adus = self.run_paced(
            n_adus=4, rate=30_000.0, rto=0.05
        )
        assert finished
        assert len(got) == len(adus)
        assert sender.stats.retransmissions == 0

    def test_ack_quantum_reaches_the_pacer(self):
        path = two_hosts(seed=3, pacing=True, rate=1e6)
        engine = SharedDrainEngine(
            path.loop, max_delay=2e-3, adaptive=True, ramp_rows=4
        )
        receiver = AlfReceiver(
            path.loop, path.b, "a", 1,
            deliver=lambda d: None, ack_interval=0, drain_engine=engine,
        )
        sender = AlfSender(path.loop, path.a, "b", 1, pacing=path.pacer)
        for i in range(8):
            sender.send_adu(Adu(i, octet_payload(1000, seed=i), {"i": i}))
        sender.close()
        path.loop.run(until=30.0)
        snap = path.pacer.counters.snapshot()
        assert snap["pressure_signals"] > 0
        assert snap["acks_stamped"] > 0


class TestSwitchTrainPreservation:
    def make(self, preserve=True, cap=32, capacity=64, bandwidth=1e6):
        loop = EventLoop()
        switch = StoreAndForwardSwitch(
            loop, queue_capacity=capacity,
            preserve_trains=preserve, train_fairness_cap=cap,
        )
        out = Link(loop, RngStreams(0).stream("out"),
                   bandwidth_bps=bandwidth, propagation_delay=1e-3)
        got = []
        out.connect(got.append)
        switch.attach("portb", out)
        switch.add_route("b", "portb")
        return loop, switch, got

    @staticmethod
    def tagged(n, tag, src="a", length=4):
        p = wire_packet(n=n, src=src, tag=tag)
        p.header["train_len"] = length
        return p

    def test_interleaved_train_forwards_contiguously(self):
        loop, switch, got = self.make()
        train = [self.tagged(n, tag=1) for n in range(4)]
        cross = [wire_packet(n=100 + n, src="c") for n in range(2)]
        switch.receive_burst(
            [train[0], cross[0], train[1], cross[1], train[2], train[3]]
        )
        loop.run()
        # The shaped train leaves the port as one unit; cross-traffic
        # queues behind it instead of interleaving packet-by-packet.
        assert [p.header["n"] for p in got] == [0, 1, 2, 3, 100, 101]
        assert switch.stats.trains_joined == 3
        assert switch.stats.train_units == 1

    def test_without_preservation_fifo_order_holds(self):
        loop, switch, got = self.make(preserve=False)
        train = [self.tagged(n, tag=1) for n in range(3)]
        cross = [wire_packet(n=100, src="c")]
        switch.receive_burst([train[0], cross[0], train[1], train[2]])
        loop.run()
        assert [p.header["n"] for p in got] == [0, 100, 1, 2]

    def test_fairness_cap_bounds_the_unit(self):
        loop, switch, got = self.make(cap=2)
        train = [self.tagged(n, tag=1, length=4) for n in range(4)]
        cross = [wire_packet(n=100 + n, src="c") for n in range(2)]
        switch.receive_burst(
            [train[0], cross[0], train[1], train[2], cross[1], train[3]]
        )
        loop.run()
        # First two train packets ride one unit; the cap forces the
        # rest to queue as a fresh unit behind the first cross packet.
        assert [p.header["n"] for p in got] == [0, 1, 100, 2, 3, 101]
        assert switch.stats.train_caps >= 1

    def test_queue_drops_break_down_by_destination(self):
        loop, switch, got = self.make(capacity=2, bandwidth=1e3)
        before = train_counters().snapshot()["switch_queue_drops"].get("b", 0)
        switch.receive_burst([wire_packet(n=n) for n in range(6)])
        loop.run()
        assert switch.stats.queue_drops == {"b": 4}
        assert switch.stats.drops == 4
        after = train_counters().snapshot()["switch_queue_drops"].get("b", 0)
        assert after - before == 4

    def test_legacy_counter_names_still_work(self):
        loop, switch, got = self.make()
        switch.receive(wire_packet(n=0))
        switch.receive(wire_packet(n=1))
        switch.receive(wire_packet(n=2, dst="nowhere"))
        loop.run()
        assert switch.forwarded == 2
        assert switch.drops == 1
        assert switch.route_memo_hits == 1
        assert switch.bursts == 0
        assert isinstance(switch.stats, SwitchStats)
        assert switch.stats.no_route_drops == 1
        assert switch.queue_depth("portb") == 0

    def test_fairness_cap_validation(self):
        with pytest.raises(NetworkError):
            StoreAndForwardSwitch(EventLoop(), train_fairness_cap=0)


class TestLinkTagBoundary:
    class Sink:
        def __init__(self):
            self.trains = []

        def receive(self, p):
            self.trains.append([p])

        def receive_burst(self, packets):
            self.trains.append(list(packets))

    def test_tag_change_closes_the_open_train(self):
        sink = self.Sink()
        loop = EventLoop()
        link = Link(loop, random.Random(7), bandwidth_bps=1e9,
                    propagation_delay=1e-3, max_train=8, train_window=1e-3)
        link.connect(sink.receive)
        for n in range(3):
            link.send(wire_packet(n=n, tag=1))
        for n in range(3, 6):
            link.send(wire_packet(n=n, tag=2))
        loop.run()
        # Without the boundary all 6 would glue into one train of 6;
        # the pacer-drawn tag boundary splits them 3 + 3.
        assert [len(t) for t in sink.trains] == [3, 3]
        assert [p.header["n"] for t in sink.trains for p in t] == list(range(6))

    def test_untagged_packets_aggregate_as_before(self):
        sink = self.Sink()
        loop = EventLoop()
        link = Link(loop, random.Random(7), bandwidth_bps=1e9,
                    propagation_delay=1e-3, max_train=4, train_window=1e-3)
        link.connect(sink.receive)
        for n in range(4):
            link.send(wire_packet(n=n))
        loop.run()
        assert [len(t) for t in sink.trains] == [4]


class TestAckPressureStamp:
    def make_receiver(self, **engine_kwargs):
        path = two_hosts(seed=4)
        engine_kwargs.setdefault("max_delay", 2e-3)
        engine_kwargs.setdefault("adaptive", True)
        engine_kwargs.setdefault("ramp_rows", 4)
        engine = SharedDrainEngine(path.loop, **engine_kwargs)
        receiver = AlfReceiver(
            path.loop, path.b, "a", 1,
            deliver=lambda d: None, ack_interval=0, drain_engine=engine,
        )
        acks = []
        path.a.bind("alf", 1, acks.append)
        return path, engine, receiver, acks

    def test_acks_carry_the_pressure_quantum(self):
        path, engine, receiver, acks = self.make_receiver()
        for _ in range(8):
            engine._observe_backlog(16)
        receiver._send_ack()
        path.loop.run()
        assert acks
        assert acks[-1].header["dp"] >= PRESSURE_HIGH

    def test_idle_engine_stamps_zero(self):
        path, engine, receiver, acks = self.make_receiver()
        receiver._send_ack()
        path.loop.run()
        assert acks[-1].header["dp"] == 0

    def test_no_engine_means_no_dp_field(self):
        path = two_hosts(seed=4)
        receiver = AlfReceiver(
            path.loop, path.b, "a", 1, deliver=lambda d: None, ack_interval=0
        )
        acks = []
        path.a.bind("alf", 1, acks.append)
        receiver._send_ack()
        path.loop.run()
        assert "dp" not in acks[-1].header

    def test_coalesced_ack_carries_latest_quantum(self):
        # Regression (satellite): an ACK latched at the *start* of a
        # drain dispatch must be stamped with the quantum current when
        # it finally flushes — pressure that built during the dispatch
        # is exactly what the sender needs to hear about.
        path, engine, receiver, acks = self.make_receiver()
        receiver.begin_drain_dispatch()
        receiver._send_ack()  # latched: quantum would be 0 right now
        assert not acks
        for _ in range(8):
            engine._observe_backlog(16)  # pressure builds mid-dispatch
        receiver.finish_drain_dispatch()
        path.loop.run()
        assert len(acks) == 1
        assert acks[0].header["dp"] >= PRESSURE_HIGH


class TestTopologyAndSessionWiring:
    def test_two_hosts_pacing_passthrough(self):
        path = two_hosts(pacing=True, rate=64_000.0, target_train=6)
        assert path.pacer is not None
        assert path.pacer.rate_bytes_per_s == 64_000.0
        assert path.pacer.target_train == 6
        assert two_hosts().pacer is None

    def test_session_initiator_builds_and_uses_a_pacer(self):
        path = two_hosts(seed=1, bandwidth_bps=50e6)
        delivered = []
        SessionListener(
            path.loop, path.b, {"ints": ArrayOf(Int32())},
            deliver=lambda fid, adu: delivered.append(adu),
            shared_drain=True, adaptive_drain=True, drain_max_delay=1e-3,
        )
        initiator = SessionInitiator(
            path.loop, path.a, "b",
            SessionConfig(schema_name="ints"),
            {"ints": ArrayOf(Int32())},
            pacing=True, rate_bytes_per_s=2e6, target_train=4,
        )
        path.loop.run(until=5)
        assert initiator.established
        sender = initiator.session.sender
        assert sender.pacing is initiator.pacing
        payload = b"".join(
            int(i).to_bytes(4, "little") for i in range(64)
        )
        for i in range(6):
            sender.send_adu(Adu(i, payload, {"i": i}))
        sender.close()
        path.loop.run(until=30)
        assert len(delivered) == 6
        assert initiator.pacing.trains > 0

    def test_shard_snapshot_reports_pressure_quantum(self):
        from repro.net.shard import ShardedHost

        path = two_hosts(seed=1)
        sharded = ShardedHost(path.b, 2, adaptive=True, max_delay=1e-3)
        snap = sharded.snapshot()
        assert all(
            entry["pressure_quantum"] == 0 for entry in snap["per_shard"]
        )
        assert all(
            entry["engine"]["pressure_quantum"] == 0
            for entry in snap["per_shard"]
        )
