"""Presentation bindings fused into the ALF transport and sessions.

With a ``presentation=`` binding the sender converts local → wire syntax
inside its compiled wire plan (fused with the checksum when the schema's
layout permits a permutation kernel), and the receiver verifies on wire
bytes then hands the application local-syntax bytes.
"""

from __future__ import annotations

import pytest

from repro.core.adu import Adu
from repro.net.topology import two_hosts
from repro.presentation.abstract import (
    ArrayOf,
    Field,
    Float64,
    Int32,
    Struct,
    Utf8String,
)
from repro.presentation.ber import BerCodec
from repro.presentation.lwts import LwtsCodec
from repro.presentation.negotiate import LocalSyntax
from repro.stages.presentation import PresentationBinding
from repro.transport.alf import AlfReceiver, AlfSender
from repro.transport.session import (
    SessionConfig,
    SessionInitiator,
    SessionListener,
)

FIXED = Struct(
    (
        Field("a", Int32()),
        Field("b", Float64()),
        Field("c", ArrayOf(Int32(), fixed_count=4)),
    )
)
VARIABLE = Struct((Field("name", Utf8String()), Field("xs", ArrayOf(Int32()))))
VALUE = {"a": -7, "b": 2.5, "c": [1, 2, 3, 4]}


def make_pair(binding_tx, binding_rx, loss_rate=0.0, seed=1, zero_copy=False):
    path = two_hosts(seed=seed, loss_rate=loss_rate)
    delivered = []
    AlfReceiver(
        path.loop, path.b, "a", 1,
        deliver=delivered.append,
        presentation=binding_rx,
        zero_copy=zero_copy,
    )
    sender = AlfSender(
        path.loop, path.a, "b", 1, mtu=512,
        presentation=binding_tx,
        zero_copy=zero_copy,
    )
    return path, sender, delivered


def lwts_binding(schema, wire_order="big"):
    return PresentationBinding(
        schema=schema,
        local=LwtsCodec(byte_order="little"),
        wire=LwtsCodec(byte_order=wire_order),
    )


class TestAlfPresentation:
    def test_fused_conversion_delivers_local_syntax(self):
        binding = lwts_binding(FIXED)
        path, sender, delivered = make_pair(binding, binding)
        assert sender._convert_fused  # fixed layout lowers to a kernel
        local = LwtsCodec(byte_order="little").encode(VALUE, FIXED)
        sender.send_adu(Adu(0, local, {}))
        path.loop.run(until=10)
        assert len(delivered) == 1
        assert bytes(delivered[0].payload) == local

    def test_wire_bytes_are_converted(self):
        """The network sees the wire syntax, not the local one."""
        binding = lwts_binding(FIXED)
        path, sender, delivered = make_pair(binding, None)
        local = LwtsCodec(byte_order="little").encode(VALUE, FIXED)
        wire = LwtsCodec(byte_order="big").encode(VALUE, FIXED)
        sender.send_adu(Adu(0, local, {}))
        path.loop.run(until=10)
        # Receiver without a binding reassembles raw wire bytes.
        assert bytes(delivered[0].payload) == wire

    def test_variable_layout_uses_compiled_codecs(self):
        binding = lwts_binding(VARIABLE)
        path, sender, delivered = make_pair(binding, binding)
        assert not sender._convert_fused  # no fixed layout, no kernel
        value = {"name": "héllo", "xs": [10, -20, 30]}
        local = LwtsCodec(byte_order="little").encode(value, VARIABLE)
        sender.send_adu(Adu(0, local, {}))
        path.loop.run(until=10)
        assert bytes(delivered[0].payload) == local

    def test_identity_binding_means_no_conversion(self):
        binding = PresentationBinding(
            schema=FIXED,
            local=LwtsCodec(byte_order="big"),
            wire=LwtsCodec(byte_order="big"),
        )
        path, sender, delivered = make_pair(binding, binding)
        assert sender._convert is None
        payload = LwtsCodec(byte_order="big").encode(VALUE, FIXED)
        sender.send_adu(Adu(0, payload, {}))
        path.loop.run(until=10)
        assert bytes(delivered[0].payload) == payload

    def test_ber_wire_syntax_roundtrips(self):
        binding = PresentationBinding(
            schema=FIXED, local=LwtsCodec(byte_order="little"), wire=BerCodec()
        )
        path, sender, delivered = make_pair(binding, binding)
        assert not sender._convert_fused  # TLV framing is not a permutation
        local = LwtsCodec(byte_order="little").encode(VALUE, FIXED)
        sender.send_adu(Adu(0, local, {}))
        path.loop.run(until=10)
        assert bytes(delivered[0].payload) == local

    def test_conversion_survives_loss_and_retransmission(self):
        binding = lwts_binding(FIXED)
        path, sender, delivered = make_pair(binding, binding, loss_rate=0.3, seed=5)
        local = LwtsCodec(byte_order="little").encode(VALUE, FIXED)
        for i in range(6):
            sender.send_adu(Adu(i, local, {"i": i}))
        path.loop.run(until=60)
        assert len(delivered) == 6
        assert all(bytes(adu.payload) == local for adu in delivered)

    def test_wire_form_memo_is_cleaned_on_ack(self):
        binding = lwts_binding(FIXED)
        path, sender, delivered = make_pair(binding, binding)
        local = LwtsCodec(byte_order="little").encode(VALUE, FIXED)
        sender.send_adu(Adu(0, local, {}))
        path.loop.run(until=10)
        assert delivered
        assert sender._wire_payloads == {}
        assert sender._wire_checksums == {}

    def test_send_batch_with_fused_binding(self):
        binding = lwts_binding(FIXED)
        path, sender, delivered = make_pair(binding, binding)
        codec = LwtsCodec(byte_order="little")
        adus = [
            Adu(i, codec.encode({**VALUE, "a": i}, FIXED), {"i": i})
            for i in range(4)
        ]
        sender.send_batch(list(adus))
        path.loop.run(until=20)
        assert [bytes(adu.payload) for adu in delivered] == [
            bytes(adu.payload) for adu in adus
        ]

    def test_send_batch_with_compiled_codec_binding(self):
        binding = lwts_binding(VARIABLE)
        path, sender, delivered = make_pair(binding, binding)
        codec = LwtsCodec(byte_order="little")
        adus = [
            Adu(i, codec.encode({"name": f"n{i}", "xs": [i, i + 1]}, VARIABLE), {})
            for i in range(3)
        ]
        sender.send_batch(list(adus))
        path.loop.run(until=20)
        assert [bytes(adu.payload) for adu in delivered] == [
            bytes(adu.payload) for adu in adus
        ]

    def test_zero_copy_chains_with_fused_binding(self):
        binding = lwts_binding(FIXED)
        path, sender, delivered = make_pair(binding, binding, zero_copy=True)
        local = LwtsCodec(byte_order="little").encode(VALUE, FIXED)
        sender.send_adu(Adu(0, local, {}))
        path.loop.run(until=10)
        assert bytes(delivered[0].payload) == local


class TestSessionPresentation:
    SCHEMAS = {"fixed": FIXED, "var": VARIABLE}

    def run_session(self, schema_name, value, init_syntax=None):
        path = two_hosts(seed=3)
        delivered = []
        listener = SessionListener(
            path.loop, path.b, self.SCHEMAS,
            deliver=lambda fid, adu: delivered.append(adu),
            presentation=True,
        )
        kwargs = {} if init_syntax is None else {"local_syntax": init_syntax}
        config = SessionConfig(schema_name=schema_name, **kwargs)
        initiator = SessionInitiator(
            path.loop, path.a, "b", config, self.SCHEMAS, presentation=True,
        )
        path.loop.run(until=5)
        assert initiator.established
        schema = self.SCHEMAS[schema_name]
        sender_codec = LwtsCodec(byte_order=config.local_syntax.byte_order)
        local = sender_codec.encode(value, schema)
        initiator.session.sender.send_adu(Adu(0, local, {}))
        path.loop.run(until=10)
        assert len(delivered) == 1
        receiver_codec = LwtsCodec(byte_order=listener.local_syntax.byte_order)
        assert bytes(delivered[0].payload) == receiver_codec.encode(value, schema)
        return initiator

    def test_sender_converts_fixed_schema_fused(self):
        initiator = self.run_session("fixed", VALUE)
        assert initiator.session.plan.strategy == "sender-converts"
        assert initiator.session.sender._convert_fused

    def test_sender_converts_variable_schema(self):
        initiator = self.run_session(
            "var", {"name": "x", "xs": [1, 2, 3]}
        )
        assert not initiator.session.sender._convert_fused

    def test_identity_when_syntaxes_agree(self):
        path = two_hosts(seed=3)
        listener = SessionListener(
            path.loop, path.b, self.SCHEMAS, presentation=True
        )
        initiator = self.run_session(
            "fixed", VALUE,
            init_syntax=LocalSyntax("init", listener.local_syntax.byte_order),
        )
        assert initiator.session.plan.strategy == "identity"
        assert initiator.session.sender._convert is None

    def test_presentation_off_is_unchanged(self):
        path = two_hosts(seed=3)
        delivered = []
        SessionListener(
            path.loop, path.b, self.SCHEMAS,
            deliver=lambda fid, adu: delivered.append(adu),
        )
        initiator = SessionInitiator(
            path.loop, path.a, "b",
            SessionConfig(schema_name="fixed"), self.SCHEMAS,
        )
        path.loop.run(until=5)
        assert initiator.established
        assert initiator.session.sender.presentation is None
        initiator.session.sender.send_adu(Adu(0, b"\x01\x02\x03\x04", {}))
        path.loop.run(until=10)
        assert bytes(delivered[0].payload) == b"\x01\x02\x03\x04"


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
