"""Syntax maps: translating transfer-syntax bytes to application terms."""

import pytest

from repro.errors import PresentationError
from repro.presentation.abstract import ArrayOf, Field, Int32, Struct, Utf8String
from repro.presentation.ber import BerCodec
from repro.presentation.namespace import (
    ElementExtent,
    SyntaxMap,
    elements_for_range,
)
from repro.presentation.xdr import XdrCodec


def build_map():
    schema = Struct(
        (Field("id", Int32()), Field("names", ArrayOf(Utf8String())))
    )
    value = {"id": 3, "names": ["ab", "cdef"]}
    return XdrCodec().syntax_map(value, schema)


def test_extent_validation():
    with pytest.raises(PresentationError):
        ElementExtent(("x",), -1, 4)
    with pytest.raises(PresentationError):
        ElementExtent(("x",), 4, 2)


def test_extent_length_and_overlap():
    extent = ElementExtent(("x",), 4, 8)
    assert extent.length == 4
    assert extent.overlaps(0, 5)
    assert extent.overlaps(7, 20)
    assert not extent.overlaps(0, 4)
    assert not extent.overlaps(8, 9)


def test_map_rejects_disorder():
    extents = [ElementExtent(("a",), 4, 8), ElementExtent(("b",), 0, 4)]
    with pytest.raises(PresentationError, match="out of order"):
        SyntaxMap("x", 8, extents)


def test_map_rejects_overrun():
    with pytest.raises(PresentationError, match="exceeds"):
        SyntaxMap("x", 4, [ElementExtent(("a",), 0, 8)])


def test_extent_of():
    syntax_map = build_map()
    assert syntax_map.extent_of(("id",)).start == 0
    with pytest.raises(PresentationError):
        syntax_map.extent_of(("missing",))


def test_elements_in_range_exact():
    syntax_map = build_map()
    # XDR layout: id [0,4), names[0] [8,16), names[1] [16,24).
    assert syntax_map.paths_in_range(0, 4) == [("id",)]
    assert syntax_map.paths_in_range(9, 10) == [("names", 0)]
    assert syntax_map.paths_in_range(0, 24) == [
        ("id",),
        ("names", 0),
        ("names", 1),
    ]


def test_range_in_container_header_hits_nothing():
    syntax_map = build_map()
    # [4, 8) is the array count word: attributed to no leaf.
    assert syntax_map.paths_in_range(4, 8) == []


def test_empty_range():
    syntax_map = build_map()
    assert syntax_map.paths_in_range(3, 3) == []


def test_invalid_range():
    syntax_map = build_map()
    with pytest.raises(PresentationError):
        syntax_map.paths_in_range(5, 2)


def test_elements_for_range_wrapper():
    syntax_map = build_map()
    assert elements_for_range(syntax_map, 0, 2) == [("id",)]


def test_tcp_cannot_ber_can():
    """The paper's complaint made concrete: the same byte loss is opaque
    in a raw stream but names elements under a syntax map."""
    schema = ArrayOf(Int32())
    value = [10, 20, 30, 40]
    syntax_map = BerCodec().syntax_map(value, schema)
    lost = syntax_map.paths_in_range(5, 9)
    assert lost  # we know exactly which integers died
    assert all(isinstance(path[0], int) for path in lost)
