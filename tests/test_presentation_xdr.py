"""XDR codec: RFC 1014 word alignment, padding, known vectors."""

import pytest

from repro.errors import DecodeError
from repro.presentation.abstract import (
    ArrayOf,
    Boolean,
    Field,
    Int32,
    OctetString,
    Struct,
    UInt32,
    Utf8String,
)
from repro.presentation.xdr import XdrCodec

codec = XdrCodec()


class TestKnownEncodings:
    def test_int(self):
        assert codec.encode(1, Int32()) == b"\x00\x00\x00\x01"
        assert codec.encode(-1, Int32()) == b"\xff\xff\xff\xff"

    def test_unsigned(self):
        assert codec.encode(2**32 - 1, UInt32()) == b"\xff\xff\xff\xff"

    def test_bool_is_a_word(self):
        assert codec.encode(True, Boolean()) == b"\x00\x00\x00\x01"
        assert codec.encode(False, Boolean()) == b"\x00\x00\x00\x00"

    def test_variable_opaque_padded(self):
        encoded = codec.encode(b"abcde", OctetString())
        assert encoded == b"\x00\x00\x00\x05abcde\x00\x00\x00"
        assert len(encoded) % 4 == 0

    def test_fixed_opaque_has_no_count(self):
        encoded = codec.encode(b"abcd", OctetString(fixed_length=4))
        assert encoded == b"abcd"

    def test_string(self):
        assert codec.encode("hi", Utf8String()) == b"\x00\x00\x00\x02hi\x00\x00"

    def test_fixed_array_has_no_count(self):
        encoded = codec.encode([1, 2], ArrayOf(Int32(), fixed_count=2))
        assert encoded == b"\x00\x00\x00\x01\x00\x00\x00\x02"

    def test_variable_array_counted(self):
        encoded = codec.encode([7], ArrayOf(Int32()))
        assert encoded == b"\x00\x00\x00\x01\x00\x00\x00\x07"


class TestAlignment:
    @pytest.mark.parametrize("length", range(0, 9))
    def test_every_opaque_is_word_aligned(self, length):
        encoded = codec.encode(bytes(length), OctetString())
        assert len(encoded) % 4 == 0


class TestRoundTrips:
    def test_record(self):
        schema = Struct(
            (
                Field("n", Int32()),
                Field("s", Utf8String()),
                Field("flags", ArrayOf(Boolean())),
                Field("raw", OctetString()),
            )
        )
        value = {
            "n": -42,
            "s": "ünïcode",
            "flags": [True, False, True],
            "raw": b"\x00\x01\x02",
        }
        assert codec.roundtrip(value, schema) == value

    def test_int_extremes(self):
        for v in (2**31 - 1, -(2**31), 0):
            assert codec.roundtrip(v, Int32()) == v


class TestMalformed:
    def test_nonzero_padding_rejected(self):
        bad = b"\x00\x00\x00\x01a\x00\x00\x01"
        with pytest.raises(DecodeError, match="padding"):
            codec.decode(bad, OctetString())

    def test_bool_out_of_range(self):
        with pytest.raises(DecodeError, match="bool"):
            codec.decode(b"\x00\x00\x00\x02", Boolean())

    def test_truncated(self):
        with pytest.raises(DecodeError, match="truncated"):
            codec.decode(b"\x00\x00", Int32())

    def test_trailing(self):
        with pytest.raises(DecodeError, match="trailing"):
            codec.decode(b"\x00\x00\x00\x01\x00", Int32())

    def test_opaque_length_overrun(self):
        with pytest.raises(DecodeError):
            codec.decode(b"\x00\x00\x00\xffabc\x00", OctetString())


class TestLayout:
    def test_extents_tile_flat_encoding(self):
        schema = ArrayOf(Int32(), fixed_count=3)
        data, extents = codec.encode_with_layout([1, 2, 3], schema)
        assert [(e.start, e.end) for e in extents] == [(0, 4), (4, 8), (8, 12)]
        assert len(data) == 12
