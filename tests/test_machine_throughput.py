"""Throughput algebra: harmonic composition of serial passes."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MachineModelError
from repro.machine.costs import CHECKSUM_COST, COPY_COST
from repro.machine.profile import MIPS_R2000
from repro.machine.throughput import combined_serial_mbps, throughput_mbps


def test_papers_separate_number():
    """1/(1/130 + 1/115) ~= 61 Mb/s — the paper's 'about 60'."""
    assert combined_serial_mbps([130.0, 115.0]) == pytest.approx(61.02, abs=0.01)


def test_single_rate_is_identity():
    assert combined_serial_mbps([42.0]) == pytest.approx(42.0)


def test_throughput_wrapper():
    assert throughput_mbps(MIPS_R2000, COPY_COST) == pytest.approx(130.0)


def test_empty_rejected():
    with pytest.raises(MachineModelError):
        combined_serial_mbps([])


def test_nonpositive_rejected():
    with pytest.raises(MachineModelError):
        combined_serial_mbps([100.0, 0.0])


@given(st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=8))
def test_combined_never_exceeds_slowest(rates):
    combined = combined_serial_mbps(rates)
    assert combined <= min(rates) + 1e-9


@given(st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=2, max_size=8))
def test_adding_a_pass_always_slows(rates):
    assert combined_serial_mbps(rates) < combined_serial_mbps(rates[:-1]) + 1e-9
