"""Cost-vector algebra: the fusion arithmetic everything rests on."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MachineModelError
from repro.machine.costs import CHECKSUM_COST, COPY_COST, ZERO_COST, CostVector

nonneg = st.floats(min_value=0, max_value=100, allow_nan=False)
vectors = st.builds(
    CostVector,
    reads_per_word=nonneg,
    writes_per_word=nonneg,
    alu_per_word=nonneg,
    calls_per_word=nonneg,
    per_call_ops=nonneg,
)


def test_canonical_costs():
    assert COPY_COST.reads_per_word == 1.0
    assert COPY_COST.writes_per_word == 1.0
    assert CHECKSUM_COST.alu_per_word == 2.0
    assert CHECKSUM_COST.writes_per_word == 0.0


def test_negative_rejected():
    with pytest.raises(MachineModelError):
        CostVector(reads_per_word=-1)


def test_add_is_componentwise():
    total = COPY_COST + CHECKSUM_COST
    assert total.reads_per_word == 2.0
    assert total.writes_per_word == 1.0
    assert total.alu_per_word == 2.0


def test_fuse_after_eliminates_one_read():
    fused = CHECKSUM_COST.fuse_after(COPY_COST)
    assert fused.reads_per_word == 1.0  # checksum's read came from a register
    assert fused.writes_per_word == 1.0
    assert fused.alu_per_word == 2.0


def test_fuse_after_with_no_reads_saves_nothing():
    write_only = CostVector(writes_per_word=1.0)
    fused = write_only.fuse_after(COPY_COST)
    assert fused.reads_per_word == COPY_COST.reads_per_word
    assert fused.writes_per_word == 2.0


def test_without_write():
    assert COPY_COST.without_write().writes_per_word == 0.0
    assert COPY_COST.without_write().reads_per_word == 1.0


def test_without_read_floors_at_zero():
    assert ZERO_COST.without_read().reads_per_word == 0.0
    assert COPY_COST.without_read().reads_per_word == 0.0


def test_scaled():
    doubled = COPY_COST.scaled(2.0)
    assert doubled.reads_per_word == 2.0
    assert doubled.writes_per_word == 2.0


def test_scaled_rejects_negative():
    with pytest.raises(MachineModelError):
        COPY_COST.scaled(-1)


@given(vectors, vectors)
def test_fuse_never_exceeds_plain_sum(a, b):
    """Fusion is a saving: fused cost <= component-wise sum, field by field."""
    fused = b.fuse_after(a)
    total = a + b
    assert fused.reads_per_word <= total.reads_per_word
    assert fused.writes_per_word == total.writes_per_word
    assert fused.alu_per_word == total.alu_per_word


@given(vectors, vectors)
def test_fuse_saves_at_most_one_read(a, b):
    fused = b.fuse_after(a)
    total = a + b
    assert total.reads_per_word - fused.reads_per_word <= 1.0 + 1e-9


@given(vectors)
def test_add_zero_is_identity(v):
    total = v + ZERO_COST
    assert total == v
