"""Property tests for selective-integrity coverage checksums.

The definitional identity (RFC 1071 masked form): the covered checksum
of ``data`` equals the full Internet checksum of ``data`` with every
*uncovered* byte zeroed.  Every compiled form — the reference function,
the fused word kernel inside a wire plan (single-ADU and batched rows),
and the zero-copy multi-segment chain fold — is pinned to that identity
across randomized policies, payload lengths (including odd tails and
partial final words) and segment boundaries.  ``for_elements`` coverage
is pinned to the compiled codec's own layout extents.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.buffers.chain import BufferChain
from repro.buffers.segment import Segment
from repro.errors import StageError
from repro.ilp.compiler import PlanCache
from repro.ilp.kernels import coverage_checksum_chain
from repro.integrity import (
    IntegrityPolicy,
    coverage_masks,
    integrity_token,
)
from repro.machine.profile import MIPS_R2000
from repro.presentation.abstract import (
    ArrayOf,
    Field,
    Float64,
    Int32,
    Int64,
    OctetString,
    Struct,
    UInt32,
)
from repro.presentation.compiler import CodecCache
from repro.presentation.lwts import LwtsCodec
from repro.stages.checksum import (
    coverage_internet_checksum,
    internet_checksum,
)
from repro.transport.alf.sender import WIRE_CHECKSUM, wire_pipeline

_PLANS = PlanCache(capacity=512)


def compiled_plan(policy: IntegrityPolicy):
    return _PLANS.get_or_compile(
        wire_pipeline(None, integrity=policy), MIPS_R2000
    )


def zeroed_reference(data: bytes, policy: IntegrityPolicy) -> int:
    """The definition: full checksum with uncovered bytes zeroed."""
    masked = bytearray(len(data))
    for lo, hi in policy.clipped(len(data)):
        masked[lo:hi] = data[lo:hi]
    return internet_checksum(bytes(masked))


# --- strategies --------------------------------------------------------

def spans():
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=480),
            st.integers(min_value=1, max_value=96),
        ).map(lambda t: (t[0], t[0] + t[1])),
        min_size=1,
        max_size=4,
    )


def policies():
    return st.one_of(
        st.just(IntegrityPolicy.full()),
        st.just(IntegrityPolicy.none()),
        st.integers(min_value=1, max_value=96).map(
            IntegrityPolicy.headers_only
        ),
        spans().map(IntegrityPolicy.of_spans),
    )


payloads = st.binary(min_size=0, max_size=600)


# --- the identity, every compiled form ---------------------------------

class TestCoverageIdentity:
    @given(payloads, policies())
    def test_reference_matches_definition(self, data, policy):
        assert coverage_internet_checksum(data, policy) == zeroed_reference(
            data, policy
        )

    @given(payloads)
    def test_full_policy_is_the_classic_checksum(self, data):
        policy = IntegrityPolicy.full()
        assert coverage_internet_checksum(data, policy) == internet_checksum(
            data
        )

    @given(payloads)
    def test_none_policy_is_the_empty_checksum(self, data):
        policy = IntegrityPolicy.none()
        assert coverage_internet_checksum(data, policy) == 0xFFFF

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=1, max_size=600), policies())
    def test_compiled_plan_matches_reference(self, data, policy):
        plan = compiled_plan(policy)
        out, observations = plan.run(data)
        assert out == data
        assert observations[WIRE_CHECKSUM] == zeroed_reference(data, policy)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.binary(min_size=1, max_size=300), min_size=1, max_size=5),
        policies(),
    )
    def test_batched_rows_match_reference(self, rows, policy):
        plan = compiled_plan(policy)
        result = plan.run_batch(list(rows))
        assert result.outputs == list(rows)
        assert result.observations[WIRE_CHECKSUM] == [
            zeroed_reference(row, policy) for row in rows
        ]

    @given(
        st.binary(min_size=1, max_size=600),
        st.lists(st.integers(min_value=0, max_value=599), max_size=3),
        policies(),
    )
    def test_multi_segment_chain_matches_reference(self, data, cuts, policy):
        # Arbitrary (odd-length) segment boundaries must not change the
        # covered fold: bytes are weighted by *global* offset parity.
        points = sorted({cut % len(data) for cut in cuts} | {0, len(data)})
        chain = BufferChain(
            [
                Segment.wrap(data[lo:hi])
                for lo, hi in zip(points, points[1:])
            ]
        )
        assert coverage_checksum_chain(chain, policy) == zeroed_reference(
            data, policy
        )

    @given(payloads, spans())
    def test_uncovered_bytes_never_change_the_sum(self, data, ranges):
        # Rewriting every uncovered byte leaves the covered checksum
        # untouched — the fold provably never reads them.
        policy = IntegrityPolicy.of_spans(ranges)
        before = coverage_internet_checksum(data, policy)
        mutated = bytearray(data)
        covered = np.zeros(len(data), dtype=bool)
        for lo, hi in policy.clipped(len(data)):
            covered[lo:hi] = True
        for index in range(len(data)):
            if not covered[index]:
                mutated[index] ^= 0xA5
        assert coverage_internet_checksum(bytes(mutated), policy) == before


# --- coverage masks ----------------------------------------------------

class TestCoverageMasks:
    @given(policies(), st.integers(min_value=1, max_value=64))
    def test_masks_select_exactly_the_covered_lanes(self, policy, width):
        indices, masks, full = coverage_masks(policy, width)
        expected = np.zeros(width * 4, dtype=np.uint8)
        for lo, hi in policy.clipped(width * 4):
            expected[lo:hi] = 0xFF
        lanes = expected.reshape(width, 4).astype(np.uint32)
        dense = (
            (lanes[:, 0] << 24)
            | (lanes[:, 1] << 16)
            | (lanes[:, 2] << 8)
            | lanes[:, 3]
        )
        assert np.array_equal(full, dense)
        assert np.array_equal(indices, np.nonzero(dense)[0])
        assert np.array_equal(masks, dense[indices])


# --- policy algebra ----------------------------------------------------

class TestPolicyAlgebra:
    @given(spans())
    def test_normalization_is_idempotent(self, ranges):
        once = IntegrityPolicy.of_spans(ranges)
        assert IntegrityPolicy.of_spans(once.spans) == once
        assert IntegrityPolicy.of_spans(ranges + ranges) == once

    @given(spans())
    def test_spans_are_sorted_and_disjoint(self, ranges):
        policy = IntegrityPolicy.of_spans(ranges)
        for (_, hi), (lo, _) in zip(policy.spans, policy.spans[1:]):
            assert hi < lo  # strictly disjoint — adjacency merged

    @given(spans(), st.integers(min_value=0, max_value=700))
    def test_covered_bytes_matches_per_byte_count(self, ranges, length):
        policy = IntegrityPolicy.of_spans(ranges)
        brute = sum(
            1
            for index in range(length)
            if policy.covers(index, index + 1)
        )
        assert policy.covered_bytes(length) == brute

    @given(spans(), spans())
    def test_fingerprint_identity_iff_same_coverage(self, a_spans, b_spans):
        a = IntegrityPolicy.of_spans(a_spans)
        b = IntegrityPolicy.of_spans(b_spans)
        assert (a.fingerprint == b.fingerprint) == (a.spans == b.spans)

    def test_default_policy_token_is_full(self):
        assert integrity_token(None) == "full"
        assert integrity_token(IntegrityPolicy.full()) == "full"

    def test_invalid_policies_rejected(self):
        with pytest.raises(StageError):
            IntegrityPolicy.of_spans([(-1, 4)])
        with pytest.raises(StageError):
            IntegrityPolicy.of_spans([(8, 4)])
        with pytest.raises(StageError):
            IntegrityPolicy.headers_only(0)
        with pytest.raises(StageError):
            IntegrityPolicy("spans")
        with pytest.raises(StageError):
            IntegrityPolicy("bogus")


# --- element-derived coverage ------------------------------------------

FIXED_SCALARS = [Int32(), UInt32(), Int64(), Float64(), OctetString(fixed_length=6)]


def _fixed_schemas(depth: int = 2):
    if depth == 0:
        return st.sampled_from(FIXED_SCALARS)
    inner = _fixed_schemas(depth - 1)
    return st.one_of(
        st.sampled_from(FIXED_SCALARS),
        st.builds(lambda e: ArrayOf(e, fixed_count=2), inner),
        st.builds(
            lambda types: Struct(
                tuple(Field(f"f{i}", t) for i, t in enumerate(types))
            ),
            st.lists(inner, min_size=1, max_size=3),
        ),
    )


class TestForElements:
    @settings(max_examples=40, deadline=None)
    @given(_fixed_schemas(), st.data())
    def test_element_coverage_matches_layout_extents(self, schema, data):
        compiled = CodecCache().get_or_compile(schema, LwtsCodec("little"))
        syntax_map = compiled.syntax_map()
        assert syntax_map is not None  # fixed layout by construction
        extents = syntax_map.extents
        picked = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(extents) - 1),
                min_size=1,
                max_size=len(extents),
                unique=True,
            )
        )
        paths = [tuple(extents[i].path) for i in picked]
        policy = IntegrityPolicy.for_elements(compiled, paths)
        # Every named element's extent is wholly covered...
        for i in picked:
            extent = extents[i]
            if extent.end > extent.start:
                assert policy.covered_bytes(extent.end) - policy.covered_bytes(
                    extent.start
                ) == extent.end - extent.start
        # ...and nothing outside the union of named extents is.
        chosen = [(extents[i].start, extents[i].end) for i in picked]
        total = syntax_map.total_length
        covered = np.zeros(total, dtype=bool)
        for lo, hi in chosen:
            covered[lo:hi] = True
        for index in range(total):
            assert policy.covers(index, index + 1) == bool(covered[index])

    def test_prefix_path_covers_whole_struct(self):
        schema = Struct(
            (
                Field(
                    "header",
                    Struct(
                        (Field("seq", Int32()), Field("stamp", Int64()))
                    ),
                ),
                Field("pixels", ArrayOf(Int32(), fixed_count=8)),
            )
        )
        compiled = CodecCache().get_or_compile(schema, LwtsCodec("little"))
        policy = IntegrityPolicy.for_elements(compiled, [("header",)])
        assert policy.spans == ((0, 12),)
        assert not policy.covers(12, compiled.syntax_map().total_length)

    def test_unmatched_paths_rejected(self):
        compiled = CodecCache().get_or_compile(
            Struct((Field("x", Int32()),)), LwtsCodec("little")
        )
        with pytest.raises(StageError):
            IntegrityPolicy.for_elements(compiled, [("nope",)])
