"""Checksums: RFC 1071 behaviour, Fletcher, CRC, and their stages."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import StageError
from repro.stages.checksum import (
    ChecksumComputeStage,
    ChecksumVerifyStage,
    crc32,
    fletcher32,
    internet_checksum,
    verify_internet_checksum,
)


class TestInternetChecksum:
    def test_known_vector(self):
        # Classic example from RFC 1071 §3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == (~0xDDF2) & 0xFFFF

    def test_empty(self):
        assert internet_checksum(b"") == 0xFFFF

    def test_odd_length_padded(self):
        assert internet_checksum(b"\xab") == internet_checksum(b"\xab\x00")

    def test_verify(self):
        data = b"the quick brown fox"
        checksum = internet_checksum(data)
        assert verify_internet_checksum(data, checksum)
        assert not verify_internet_checksum(data + b"!", checksum)

    def test_detects_single_bit_flip(self):
        data = bytearray(b"hello world!")
        checksum = internet_checksum(bytes(data))
        data[5] ^= 0x04
        assert internet_checksum(bytes(data)) != checksum

    @given(st.binary(max_size=200))
    def test_range(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF

    @given(st.binary(max_size=200))
    def test_deterministic(self, data):
        assert internet_checksum(data) == internet_checksum(data)

    def test_word_reorder_invisible(self):
        """The famous weakness: one's-complement sums commute, so
        16-bit-word reordering is undetected (why Fletcher exists)."""
        a = b"\x01\x02\x03\x04"
        b = b"\x03\x04\x01\x02"
        assert internet_checksum(a) == internet_checksum(b)


class TestFletcher32:
    def test_known_values_differ_by_position(self):
        assert fletcher32(b"\x01\x02\x03\x04") != fletcher32(b"\x03\x04\x01\x02")

    def test_empty(self):
        assert isinstance(fletcher32(b""), int)

    @given(st.binary(max_size=300))
    def test_range(self, data):
        assert 0 <= fletcher32(data) <= 0xFFFFFFFF

    def test_long_input_no_overflow(self):
        fletcher32(bytes(range(256)) * 64)  # must not blow up


class TestCrc32:
    def test_known_vector(self):
        assert crc32(b"123456789") == 0xCBF43926

    def test_empty(self):
        assert crc32(b"") == 0


class TestStages:
    def test_compute_stage_passthrough(self):
        stage = ChecksumComputeStage()
        data = b"payload"
        assert stage.apply(data) == data
        assert stage.last_checksum == internet_checksum(data)

    def test_compute_stage_reset(self):
        stage = ChecksumComputeStage()
        stage.apply(b"x")
        stage.reset()
        assert stage.last_checksum is None

    def test_unknown_algorithm(self):
        with pytest.raises(StageError, match="unknown checksum"):
            ChecksumComputeStage("md5")

    def test_algorithms_have_distinct_costs(self):
        internet = ChecksumComputeStage("internet")
        crc = ChecksumComputeStage("crc32")
        assert crc.cost.reads_per_word > internet.cost.reads_per_word

    def test_verify_stage_passes(self):
        stage = ChecksumVerifyStage()
        data = b"payload"
        stage.expect(internet_checksum(data))
        assert stage.apply(data) == data
        assert stage.failures == 0

    def test_verify_stage_fails_on_mismatch(self):
        stage = ChecksumVerifyStage()
        stage.expect(0x1234)
        with pytest.raises(StageError, match="mismatch"):
            stage.apply(b"corrupted")
        assert stage.failures == 1

    def test_verify_without_expectation_observes_only(self):
        stage = ChecksumVerifyStage()
        stage.apply(b"anything")  # no raise

    def test_verify_provides_verified_fact(self):
        from repro.stages.base import Facts

        assert Facts.VERIFIED in ChecksumVerifyStage().provides


class TestChainChecksums:
    """Every algorithm must checksum a chain without linearizing it."""

    def _chain(self, data: bytes, cuts: list[int]) -> "BufferChain":
        from repro.buffers.chain import BufferChain
        from repro.buffers.segment import Segment

        bounds = sorted({min(c, len(data)) for c in cuts} | {0, len(data)})
        return BufferChain(
            [Segment.wrap(data[a:b]) for a, b in zip(bounds, bounds[1:]) if b > a]
        )

    def test_fletcher32_chain_matches_contiguous(self):
        import random

        from repro.stages.checksum import fletcher32, fletcher32_chain

        rng = random.Random(7)
        # Cover the 359-word fold boundary, odd lengths, and odd cuts.
        for length in [0, 1, 2, 3, 716, 717, 718, 719, 720, 1500]:
            data = rng.randbytes(length)
            cuts = [rng.randrange(length + 1) for _ in range(3)]
            assert fletcher32_chain(self._chain(data, cuts)) == fletcher32(data)

    def test_crc32_chain_matches_contiguous(self):
        import random

        from repro.stages.checksum import crc32, crc32_chain

        rng = random.Random(8)
        for length in [0, 1, 5, 1024]:
            data = rng.randbytes(length)
            assert crc32_chain(self._chain(data, [1, 7, 100])) == crc32(data)

    def test_compute_stage_never_linearizes_a_chain(self):
        import random

        from repro.machine.accounting import datapath_counters

        rng = random.Random(9)
        data = rng.randbytes(999)
        for algorithm in ["internet", "fletcher32", "crc32"]:
            chain = self._chain(data, [100, 500])
            stage = ChecksumComputeStage(algorithm)
            counters = datapath_counters()
            counters.reset()
            out = stage.apply(chain)
            snap = counters.snapshot()
            counters.reset()
            assert out is chain
            assert snap["copies"] == 0, algorithm
            assert snap["read_passes"] == 1, algorithm
            contiguous = ChecksumComputeStage(algorithm)
            contiguous.apply(data)
            assert stage.last_checksum == contiguous.last_checksum, algorithm
