"""Property: paced egress is byte-identical and exactly-once.

The invariant the pacer promises: shaping is a *timing* change, never a
semantic one.  For any mix of flows, loss, reordering and duplication —
and whether the receiving shards run serial or threaded — a transfer
driven through a :class:`TrainPacer` recovers to the exact same
delivered bytes as the unpaced sender, each ADU exactly once.

ADUs stay single-fragment (payloads below the MTU) and recovery runs in
TRANSPORT_BUFFER mode with a generous attempt budget, so both the paced
and unpaced runs are expected to *complete*; the comparison is between
their full delivered sets (the RNG draw sequences differ under pacing,
so per-packet fate is not comparable — final semantics are).
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.adu import Adu
from repro.machine.accounting import ShardCounters
from repro.net.shard import ShardedHost
from repro.net.topology import two_hosts
from repro.transport.alf import AlfSender, RecoveryMode

from tests.test_net_shard import adu_payload, bind_flow
from tests.test_packet_trains_property import assert_exactly_once, fingerprint


CASES = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=2**16),
        "n_flows": st.integers(min_value=1, max_value=3),
        "adus_per_flow": st.integers(min_value=1, max_value=5),
        "adu_bytes": st.integers(min_value=16, max_value=192),
        "loss_rate": st.sampled_from([0.0, 0.1]),
        "duplicate_rate": st.sampled_from([0.0, 0.1]),
        "reorder_rate": st.sampled_from([0.0, 0.1]),
        "rate": st.sampled_from([50_000.0, 250_000.0]),
        "target_train": st.sampled_from([2, 4, 8]),
    }
)


def run_case(case: dict, paced: bool, threaded: bool) -> dict:
    """One recovered end-to-end run; per-flow delivered payload lists."""
    path = two_hosts(
        seed=case["seed"],
        bandwidth_bps=50e6,
        loss_rate=case["loss_rate"],
        duplicate_rate=case["duplicate_rate"],
        reorder_rate=case["reorder_rate"],
        max_train=8,
        train_window=1e-3,
        pacing=paced,
        rate=case["rate"],
        target_train=case["target_train"],
    )
    sharded = ShardedHost(
        path.b, 4, threaded=threaded, counters=ShardCounters()
    )
    sharded.attach_link(path.a_to_b)
    delivered: dict[int, list[bytes]] = {}
    flows = list(range(1, case["n_flows"] + 1))
    senders = []
    done: list[int] = []
    try:
        for flow_id in flows:
            bind_flow(sharded, flow_id, delivered)
            sender = AlfSender(
                path.loop, path.a, "b", flow_id,
                recovery=RecoveryMode.TRANSPORT_BUFFER,
                rto=0.1, max_attempts=60,
                pacing=path.pacer if paced else None,
                on_complete=lambda: done.append(1),
            )
            senders.append(sender)
            for i in range(case["adus_per_flow"]):
                sender.send_adu(
                    Adu(i, adu_payload(1000 * flow_id + i, case["adu_bytes"]),
                        {"i": i})
                )
            sender.close()
        # Recovery needs rounds: the main loop runs link + retransmit
        # timers, the shard drain settles delivery + ACK emission.
        for _ in range(200):
            path.loop.run(until=path.loop.now + 0.5)
            sharded.drain()
            if len(done) == len(flows):
                break
        path.loop.run(until=path.loop.now + 0.5)
        sharded.drain()
    finally:
        sharded.shutdown()
    assert len(done) == len(flows), "a sender failed to complete recovery"
    assert all(not s.adus_abandoned for s in senders)
    return delivered


def offered(case: dict) -> dict[int, list[bytes]]:
    return {
        flow_id: sorted(
            adu_payload(1000 * flow_id + i, case["adu_bytes"])
            for i in range(case["adus_per_flow"])
        )
        for flow_id in range(1, case["n_flows"] + 1)
    }


@settings(max_examples=20, deadline=None)
@given(case=CASES)
def test_serial_paced_recovers_to_unpaced_bytes(case):
    unpaced = run_case(case, paced=False, threaded=False)
    paced = run_case(case, paced=True, threaded=False)
    assert_exactly_once(unpaced)
    assert_exactly_once(paced)
    assert fingerprint(paced) == fingerprint(unpaced) == offered(case)


@settings(max_examples=6, deadline=None)
@given(case=CASES)
def test_threaded_paced_recovers_to_unpaced_bytes(case):
    unpaced = run_case(case, paced=False, threaded=False)
    paced = run_case(case, paced=True, threaded=True)
    assert_exactly_once(paced)
    assert fingerprint(paced) == fingerprint(unpaced) == offered(case)
