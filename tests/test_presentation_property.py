"""Property tests across all codecs: random schemas, random values.

The core invariants:
* decode(encode(v)) == v for every codec and every valid (schema, value);
* the layout extents are in order, non-overlapping, within bounds, and
  one per leaf element;
* byte-range loss always maps to a well-defined set of element paths.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.presentation.abstract import (
    ArrayOf,
    Boolean,
    Field,
    Float64,
    Int32,
    Int64,
    OctetString,
    Struct,
    UInt32,
    Utf8String,
    flatten_paths,
)
from repro.presentation.ber import BerCodec
from repro.presentation.lwts import LwtsCodec
from repro.presentation.namespace import SyntaxMap
from repro.presentation.xdr import XdrCodec

CODECS = [BerCodec(), XdrCodec(), LwtsCodec("little"), LwtsCodec("big")]


# --- (schema, value) strategy ------------------------------------------

def _scalar_schemas():
    return st.sampled_from(
        [Boolean(), Int32(), UInt32(), Int64(), Float64(), OctetString(),
         Utf8String()]
    )


def _schemas(depth: int = 2):
    if depth == 0:
        return _scalar_schemas()
    inner = _schemas(depth - 1)
    return st.one_of(
        _scalar_schemas(),
        st.builds(ArrayOf, inner),
        st.builds(
            lambda types: Struct(
                tuple(Field(f"f{i}", t) for i, t in enumerate(types))
            ),
            st.lists(inner, min_size=1, max_size=3),
        ),
    )


def _value_for(schema) -> st.SearchStrategy:
    if isinstance(schema, Boolean):
        return st.booleans()
    if isinstance(schema, Int32):
        return st.integers(min_value=-(2**31), max_value=2**31 - 1)
    if isinstance(schema, UInt32):
        return st.integers(min_value=0, max_value=2**32 - 1)
    if isinstance(schema, Int64):
        return st.integers(min_value=-(2**63), max_value=2**63 - 1)
    if isinstance(schema, Float64):
        # NaN breaks equality-based roundtrip comparison; it has its own
        # unit tests.
        return st.floats(allow_nan=False)
    if isinstance(schema, OctetString):
        return st.binary(max_size=12)
    if isinstance(schema, Utf8String):
        return st.text(max_size=8)
    if isinstance(schema, ArrayOf):
        return st.lists(_value_for(schema.element), max_size=4)
    if isinstance(schema, Struct):
        return st.fixed_dictionaries(
            {field.name: _value_for(field.type) for field in schema.fields}
        )
    raise AssertionError(schema)


schema_and_value = _schemas().flatmap(
    lambda schema: st.tuples(st.just(schema), _value_for(schema))
)


# --- properties ---------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(schema_and_value)
def test_roundtrip_all_codecs(pair):
    schema, value = pair
    for codec in CODECS:
        assert codec.roundtrip(value, schema) == value, codec.name


@settings(max_examples=60, deadline=None)
@given(schema_and_value)
def test_layout_invariants(pair):
    schema, value = pair
    leaves = list(flatten_paths(value, schema))
    for codec in CODECS:
        data, extents = codec.encode_with_layout(value, schema)
        # One extent per leaf, in leaf order.
        assert [e.path for e in extents] == leaves, codec.name
        # In order, non-overlapping, within bounds (SyntaxMap enforces).
        syntax_map = SyntaxMap(codec.name, len(data), extents)
        assert syntax_map.total_length == len(data)


@settings(max_examples=40, deadline=None)
@given(
    schema_and_value,
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=0, max_value=60),
)
def test_loss_translation_total(pair, start, width):
    """Any byte-range loss translates to element paths, and every element
    that overlaps the range is reported."""
    schema, value = pair
    codec = CODECS[0]
    syntax_map = codec.syntax_map(value, schema)
    start = min(start, syntax_map.total_length)
    end = min(start + width, syntax_map.total_length)
    hit = set(map(tuple, syntax_map.paths_in_range(start, end)))
    for extent in syntax_map.extents:
        expected = max(extent.start, start) < min(extent.end, end)
        assert (tuple(extent.path) in hit) == expected


@settings(max_examples=40, deadline=None)
@given(schema_and_value)
def test_xdr_always_word_aligned(pair):
    schema, value = pair
    assert len(XdrCodec().encode(value, schema)) % 4 == 0


@settings(max_examples=40, deadline=None)
@given(schema_and_value)
def test_lwts_fixed_size_agrees_when_known(pair):
    schema, value = pair
    codec = LwtsCodec()
    size = codec.fixed_size(schema)
    if size is not None:
        assert len(codec.encode(value, schema)) == size
