"""ATM cell layer: segmentation, reassembly, loss detection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetworkError
from repro.net.atm import (
    CELL_PAYLOAD_BYTES,
    AtmAdaptationLayer,
    AtmCell,
    cells_for,
    segment,
)


def collect_aal():
    done, lost = [], []
    aal = AtmAdaptationLayer(
        on_sdu=lambda vci, sid, payload: done.append((vci, sid, payload)),
        on_loss=lambda vci, sid, got, total: lost.append((sid, got, total)),
    )
    return aal, done, lost


class TestSegmentation:
    def test_payload_bound_is_the_papers_44(self):
        assert CELL_PAYLOAD_BYTES == 44

    def test_cell_count(self):
        assert cells_for(0) == 1
        assert cells_for(44) == 1
        assert cells_for(45) == 2
        assert cells_for(4400) == 100

    def test_segment_produces_counted_cells(self):
        cells = segment(bytes(100), vci=1, sdu_id=9)
        assert len(cells) == 3
        assert all(c.total == 3 and c.sdu_id == 9 for c in cells)
        assert [c.index for c in cells] == [0, 1, 2]

    def test_empty_payload_single_cell(self):
        cells = segment(b"", vci=1, sdu_id=2)
        assert len(cells) == 1
        assert cells[0].payload == b""

    def test_cell_validation(self):
        with pytest.raises(NetworkError):
            AtmCell(1, 1, 0, 1, bytes(45))
        with pytest.raises(NetworkError):
            AtmCell(1, 1, 2, 2, b"")

    def test_auto_sdu_ids_increment(self):
        a = segment(b"x", vci=1)[0].sdu_id
        b = segment(b"x", vci=1)[0].sdu_id
        assert b > a

    @given(st.binary(min_size=0, max_size=500))
    @settings(max_examples=50, deadline=None)
    def test_segmentation_is_lossless(self, payload):
        cells = segment(payload, vci=3, sdu_id=1)
        assert b"".join(c.payload for c in cells) == payload


class TestReassembly:
    def test_complete_sdu_delivered(self):
        aal, done, lost = collect_aal()
        for cell in segment(bytes(range(200)), vci=1, sdu_id=1):
            aal.receive(cell)
        assert done == [(1, 1, bytes(range(200)))]
        assert lost == []
        assert aal.sdus_delivered == 1

    def test_gap_detected_as_loss(self):
        aal, done, lost = collect_aal()
        cells = segment(bytes(200), vci=1, sdu_id=1)
        for cell in cells[:2] + cells[3:]:  # cell 2 lost
            aal.receive(cell)
        assert done == []
        assert lost == [(1, 4, 5)]
        assert aal.sdus_lost == 1

    def test_lost_tail_detected_by_next_sdu(self):
        """In-order delivery: a new SDU on the VC condemns the old one."""
        aal, done, lost = collect_aal()
        first = segment(bytes(100), vci=1, sdu_id=1)
        for cell in first[:-1]:  # tail cell lost
            aal.receive(cell)
        for cell in segment(bytes(50), vci=1, sdu_id=2):
            aal.receive(cell)
        assert [sid for _, sid, _ in done] == [2]
        assert lost[0][0] == 1

    def test_flush_abandons_partials(self):
        aal, done, lost = collect_aal()
        cells = segment(bytes(100), vci=1, sdu_id=1)
        aal.receive(cells[0])
        aal.flush()
        assert lost == [(1, 1, 3)]

    def test_vcs_are_independent(self):
        aal, done, lost = collect_aal()
        one = segment(bytes(100), vci=1, sdu_id=1)
        two = segment(bytes(100), vci=2, sdu_id=1)
        # Interleave cells of the two VCs.
        for pair in zip(one, two):
            for cell in pair:
                aal.receive(cell)
        assert len(done) == 2
        assert lost == []

    def test_inconsistent_total_rejected(self):
        aal, done, lost = collect_aal()
        aal.receive(AtmCell(1, 1, 0, 2, b"a"))
        with pytest.raises(NetworkError, match="inconsistent"):
            aal.receive(AtmCell(1, 1, 1, 3, b"b"))

    def test_cells_received_counter(self):
        aal, done, lost = collect_aal()
        for cell in segment(bytes(100), vci=1, sdu_id=1):
            aal.receive(cell)
        assert aal.cells_received == 3
