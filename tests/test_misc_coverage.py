"""Cross-cutting checks: reprs, error text quality, enum stability,
and the report object's less-travelled paths."""

import pytest

from repro.core.adu import Adu
from repro.errors import PipelineError
from repro.ilp.executor import LayeredExecutor
from repro.ilp.pipeline import Pipeline
from repro.ilp.report import ExecutionReport
from repro.machine.profile import MIPS_R2000
from repro.net.packet import Packet
from repro.stages.base import Facts, PassthroughStage
from repro.stages.copy import CopyStage
from repro.transport.alf import RecoveryMode


class TestReprs:
    """Reprs are part of the debugging API; keep them informative."""

    def test_packet_repr(self):
        packet = Packet("a", "b", "alf", 7, header={"k": 1}, payload=b"xy")
        text = repr(packet)
        assert "a->b" in text and "alf/7" in text and "2B" in text

    def test_stage_repr(self):
        assert "passthrough" in repr(PassthroughStage())

    def test_pipeline_repr(self):
        pipeline = Pipeline([CopyStage(name="one")])
        assert "one" in repr(pipeline)

    def test_buffer_reprs(self):
        from repro.buffers.buffer import Buffer
        from repro.buffers.chain import BufferChain
        from repro.buffers.pool import BufferPool

        assert "size=4" in repr(Buffer(4, label="x"))
        assert "length=3" in repr(BufferChain.from_bytes(b"abc"))
        assert "free" in repr(BufferPool(2, 8))


class TestErrorQuality:
    """Errors must say what went wrong in domain terms."""

    def test_checksum_error_carries_values(self):
        from repro.errors import StageError
        from repro.stages.checksum import ChecksumVerifyStage

        stage = ChecksumVerifyStage()
        stage.expect(0xABCD)
        with pytest.raises(StageError) as excinfo:
            stage.apply(b"wrong")
        assert "0xabcd" in str(excinfo.value)

    def test_fact_error_names_both_sides(self):
        from repro.errors import StageError

        needs = PassthroughStage("needy")
        needs.requires = frozenset({Facts.VERIFIED})
        with pytest.raises(StageError) as excinfo:
            Pipeline([needs])
        message = str(excinfo.value)
        assert "needy" in message and "verified" in message

    def test_mtu_error_names_link(self):
        from repro.errors import NetworkError
        from repro.net.topology import two_hosts

        path = two_hosts()
        path.a_to_b.mtu = 10
        with pytest.raises(NetworkError) as excinfo:
            path.a_to_b.send(
                Packet("a", "b", "t", 1, payload=bytes(100))
            )
        assert "a->b" in str(excinfo.value)


class TestEnumStability:
    """RecoveryMode values travel in session handshakes; they are wire
    format and must never change."""

    def test_values(self):
        assert RecoveryMode.TRANSPORT_BUFFER.value == "transport-buffer"
        assert RecoveryMode.APP_RECOMPUTE.value == "app-recompute"
        assert RecoveryMode.NO_RETRANSMIT.value == "no-retransmit"

    def test_roundtrip_by_value(self):
        for mode in RecoveryMode:
            assert RecoveryMode(mode.value) is mode


class TestFactsVocabulary:
    def test_all_contains_every_fact(self):
        named = {
            getattr(Facts, name)
            for name in dir(Facts)
            if name.isupper() and name != "ALL"
        }
        assert named == set(Facts.ALL)


class TestReportEdges:
    def test_empty_report_throughput_raises(self):
        report = ExecutionReport(
            pipeline_name="p", mode="layered", profile=MIPS_R2000,
            payload_bytes=100,
        )
        with pytest.raises(PipelineError):
            report.mbps()

    def test_summary_lists_speculative_facts(self):
        report = ExecutionReport(
            pipeline_name="p", mode="integrated", profile=MIPS_R2000,
            payload_bytes=100, speculative_facts={Facts.VERIFIED},
        )
        _, priced = LayeredExecutor(MIPS_R2000).execute(
            Pipeline([CopyStage()]), b"x" * 100
        )
        report.executions = priced.executions
        assert "verified" in report.summary()


class TestAduEdges:
    def test_checksum_stable_across_name_changes(self):
        a = Adu(0, b"data", {"x": 1})
        b = Adu(1, b"data", {"y": 2})
        assert a.checksum == b.checksum  # names are control, not data
