"""ACK generation and timestamp machinery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.control.ack import AckGenerator, SelectiveAckTracker
from repro.control.timestamp import JitterEstimator, PlayoutBuffer
from repro.errors import TransportError


class TestAckGenerator:
    def test_in_order_advances(self):
        acks = AckGenerator(delayed_ack_every=1)
        assert acks.on_segment(0, 100)
        assert acks.cumulative == 100
        acks.on_segment(100, 100)
        assert acks.cumulative == 200

    def test_gap_holds_cumulative_and_acks_immediately(self):
        acks = AckGenerator(delayed_ack_every=10)
        acks.on_segment(0, 100)
        assert acks.on_segment(200, 100) is True  # dup-ack trigger
        assert acks.cumulative == 100
        assert acks.pending_islands == 1

    def test_fill_absorbs_islands(self):
        acks = AckGenerator()
        acks.on_segment(0, 100)
        acks.on_segment(200, 100)
        acks.on_segment(300, 100)
        acks.on_segment(100, 100)  # fills the hole
        assert acks.cumulative == 400
        assert acks.pending_islands == 0

    def test_delayed_ack_policy(self):
        acks = AckGenerator(delayed_ack_every=2)
        assert acks.on_segment(0, 10) is False
        assert acks.on_segment(10, 10) is True

    def test_duplicate_data_tolerated(self):
        acks = AckGenerator()
        acks.on_segment(0, 100)
        acks.on_segment(0, 100)
        assert acks.cumulative == 100

    def test_validation(self):
        with pytest.raises(TransportError):
            AckGenerator(delayed_ack_every=0)
        with pytest.raises(TransportError):
            AckGenerator().on_segment(-1, 5)

    @settings(max_examples=40, deadline=None)
    @given(st.permutations(list(range(10))))
    def test_any_arrival_order_converges(self, order):
        """However segments arrive, once all are in, the cumulative point
        covers everything."""
        acks = AckGenerator()
        for index in order:
            acks.on_segment(index * 10, 10)
        assert acks.cumulative == 100
        assert acks.pending_islands == 0


class TestSelectiveAck:
    def test_records_and_dedups(self):
        tracker = SelectiveAckTracker()
        assert tracker.on_adu(3) is True
        assert tracker.on_adu(3) is False
        assert tracker.received_names() == {3}

    def test_missing_below_highest(self):
        tracker = SelectiveAckTracker()
        for sequence in (0, 2, 5):
            tracker.on_adu(sequence)
        assert tracker.missing_below_highest() == [1, 3, 4]

    def test_ack_payload(self):
        tracker = SelectiveAckTracker()
        tracker.on_adu(1)
        payload = tracker.ack_payload()
        assert payload["highest"] == 1
        assert payload["missing"] == [0]

    def test_negative_rejected(self):
        with pytest.raises(TransportError):
            SelectiveAckTracker().on_adu(-1)


class TestJitter:
    def test_first_packet_no_jitter(self):
        estimator = JitterEstimator()
        assert estimator.on_packet(0.0, 0.1) == 0.0

    def test_constant_transit_zero_jitter(self):
        estimator = JitterEstimator()
        for n in range(10):
            estimator.on_packet(n * 0.01, n * 0.01 + 0.05)
        assert estimator.jitter == pytest.approx(0.0)

    def test_variation_raises_jitter(self):
        estimator = JitterEstimator()
        estimator.on_packet(0.0, 0.05)
        estimator.on_packet(0.01, 0.08)  # transit jumped by 20ms
        assert estimator.jitter > 0.0


class TestPlayout:
    def test_on_time_scheduled(self):
        playout = PlayoutBuffer(playout_offset=0.1)
        play_time = playout.on_unit(1, sender_timestamp=0.0, arrival_time=0.05)
        assert play_time == pytest.approx(0.1)
        assert playout.on_time_count == 1

    def test_late_dropped(self):
        playout = PlayoutBuffer(playout_offset=0.1)
        assert playout.on_unit(1, 0.0, 0.2) is None
        assert playout.late_count == 1

    def test_bigger_offset_tolerates_more(self):
        tight = PlayoutBuffer(playout_offset=0.05)
        loose = PlayoutBuffer(playout_offset=0.5)
        for unit, arrival in enumerate((0.06, 0.3, 0.45)):
            tight.on_unit(unit, 0.0, arrival)
            loose.on_unit(unit, 0.0, arrival)
        assert loose.on_time_count > tight.on_time_count

    def test_validation(self):
        with pytest.raises(TransportError):
            PlayoutBuffer(-0.1)
