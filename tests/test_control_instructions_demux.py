"""Instruction accounting and demultiplexing."""

import pytest

from repro.control.demux import DemuxTable
from repro.control.instructions import InstructionCosts, InstructionCounter
from repro.errors import ReproError, TransportError


class TestCosts:
    def test_lookup_by_name(self):
        costs = InstructionCosts()
        assert costs.of("demux_lookup") == 12
        assert costs.of("ack_compute") == 15

    def test_unknown_operation(self):
        with pytest.raises(ReproError, match="unknown control operation"):
            InstructionCosts().of("quantum_teleport")

    def test_every_budget_is_tens_not_hundreds(self):
        """The paper's claim, enforced on the budgets themselves."""
        costs = InstructionCosts()
        for field_name in costs.__dataclass_fields__:
            assert 1 <= costs.of(field_name) < 100


class TestCounter:
    def test_record_accumulates(self):
        counter = InstructionCounter()
        counter.record("demux_lookup")
        counter.record("demux_lookup", times=2)
        assert counter.total == 36
        assert counter.by_operation == {"demux_lookup": 36}

    def test_negative_times_rejected(self):
        with pytest.raises(ReproError):
            InstructionCounter().record("demux_lookup", times=-1)

    def test_per_packet(self):
        counter = InstructionCounter()
        counter.record("ack_compute", times=4)
        counter.note_packet()
        counter.note_packet()
        assert counter.per_packet() == 30.0

    def test_per_packet_no_packets(self):
        assert InstructionCounter().per_packet() == 0.0

    def test_merge(self):
        a, b = InstructionCounter(), InstructionCounter()
        a.record("timestamp")
        b.record("timestamp")
        b.record("timer_set")
        b.note_packet()
        a.merge(b)
        assert a.by_operation["timestamp"] == 8
        assert a.by_operation["timer_set"] == 8
        assert a.packets_processed == 1


class TestDemux:
    def test_bind_lookup(self):
        table = DemuxTable()
        table.bind(5, "state-5")
        assert table.lookup(5) == "state-5"
        assert table.lookups == 1
        assert 5 in table
        assert len(table) == 1

    def test_lookup_charges_control_path(self):
        counter = InstructionCounter()
        table = DemuxTable(counter)
        table.bind(1, object())
        table.lookup(1)
        assert counter.by_operation["header_parse"] == 10
        assert counter.by_operation["demux_lookup"] == 12

    def test_miss_raises_and_counts(self):
        table = DemuxTable()
        with pytest.raises(TransportError, match="no state"):
            table.lookup(9)
        assert table.misses == 1

    def test_double_bind_rejected(self):
        table = DemuxTable()
        table.bind(1, "a")
        with pytest.raises(TransportError):
            table.bind(1, "b")

    def test_unbind(self):
        table = DemuxTable()
        table.bind(1, "a")
        table.unbind(1)
        assert 1 not in table
        table.unbind(1)  # idempotent

    def test_memo_skips_hash_lookup_not_header_parse(self):
        counter = InstructionCounter()
        table = DemuxTable(counter)
        table.bind(1, "a")
        table.lookup(1)
        table.lookup(1)  # memo hit: §4 header prediction
        assert table.memo_hits == 1
        assert table.lookups == 2
        # Every packet still parses its header; only the second hash
        # lookup is predicted away.
        assert counter.by_operation["header_parse"] == 2 * 10
        assert counter.by_operation["demux_lookup"] == 1 * 12

    def test_memo_accounting_under_mixed_traffic(self):
        counter = InstructionCounter()
        table = DemuxTable(counter)
        table.bind(1, "a")
        table.bind(2, "b")
        flows = [1, 1, 2, 2, 2, 1, 2]
        for flow in flows:
            table.lookup(flow)
        # Runs: [1,1], [2,2,2], [1], [2] -> 3 memo hits, 4 real lookups.
        assert table.memo_hits == 3
        assert table.lookups == len(flows)
        assert counter.by_operation["header_parse"] == len(flows) * 10
        assert counter.by_operation["demux_lookup"] == 4 * 12

    def test_memo_invalidated_by_mutation(self):
        table = DemuxTable()
        table.bind(1, "a")
        table.lookup(1)
        table.unbind(1)
        with pytest.raises(TransportError, match="no state"):
            table.lookup(1)  # the memo must not resurrect dead state
        table.bind(1, "a2")
        assert table.lookup(1) == "a2"
        assert table.memo_hits == 0
