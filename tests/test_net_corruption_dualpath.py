"""Corruption in flight and real path-diversity reordering.

Corruption exercises the paper's end-to-end argument directly: the
network *delivers* damaged data; only the transports' error-detection
manipulations notice.
"""

import pytest

from repro.bench.workloads import file_payload, octet_payload
from repro.core.adu import Adu
from repro.net.packet import Packet
from repro.net.topology import two_hosts, two_hosts_dual_path
from repro.transport.alf import AlfReceiver, AlfSender
from repro.transport.tcpstyle import TcpStyleReceiver, TcpStyleSender


class TestCorruption:
    def test_corrupted_bytes_are_delivered_not_dropped(self):
        path = two_hosts(seed=1, corrupt_rate=1.0)
        got = []
        path.b.bind("t", 1, lambda p: got.append(p.payload))
        path.a.send(Packet(src="a", dst="b", protocol="t", flow_id=1,
                           payload=bytes(32)))
        path.loop.run()
        assert len(got) == 1
        assert got[0] != bytes(32)  # damaged...
        assert len(got[0]) == 32    # ...but delivered
        assert path.a_to_b.stats.corrupted == 1

    def test_single_bit_flip_only(self):
        path = two_hosts(seed=2, corrupt_rate=1.0)
        got = []
        path.b.bind("t", 1, lambda p: got.append(p.payload))
        original = octet_payload(64, seed=3)
        path.a.send(Packet(src="a", dst="b", protocol="t", flow_id=1,
                           payload=original))
        path.loop.run()
        differing_bits = sum(
            bin(a ^ b).count("1") for a, b in zip(original, got[0])
        )
        assert differing_bits == 1

    def test_empty_payload_never_corrupted(self):
        path = two_hosts(seed=3, corrupt_rate=1.0)
        got = []
        path.b.bind("t", 1, lambda p: got.append(p.payload))
        path.a.send(Packet(src="a", dst="b", protocol="t", flow_id=1))
        path.loop.run()
        assert got == [b""]
        assert path.a_to_b.stats.corrupted == 0

    def test_tcp_checksum_catches_and_recovers(self):
        path = two_hosts(seed=4, corrupt_rate=0.05, bandwidth_bps=50e6)
        payload = file_payload(60_000, seed=4)
        received = bytearray()
        receiver = TcpStyleReceiver(
            path.loop, path.b, "a", 1, deliver=received.extend
        )
        sender = TcpStyleSender(path.loop, path.a, "b", 1)
        sender.send(payload)
        sender.close()
        path.loop.run(until=300)
        assert bytes(received) == payload  # exactly, despite bit flips
        assert receiver.stats.checksum_failures > 0
        assert sender.stats.retransmissions > 0

    def test_alf_adu_checksum_catches_and_recovers(self):
        path = two_hosts(seed=5, corrupt_rate=0.05, bandwidth_bps=50e6)
        got = {}
        receiver = AlfReceiver(
            path.loop, path.b, "a", 1,
            deliver=lambda d: got.setdefault(d.sequence, d.payload),
            expected_adus=20,
        )
        sender = AlfSender(path.loop, path.a, "b", 1)
        adus = [Adu(i, octet_payload(3000, seed=50 + i)) for i in range(20)]
        for adu in adus:
            sender.send_adu(adu)
        sender.close()
        path.loop.run(until=120)
        assert len(got) == 20
        assert all(got[a.sequence] == a.payload for a in adus)
        assert receiver.stats.checksum_failures > 0

    def test_rate_validation(self):
        from repro.errors import NetworkError

        with pytest.raises(NetworkError):
            two_hosts(corrupt_rate=1.5)


class TestDualPath:
    def test_spraying_reorders_mechanically(self):
        dual = two_hosts_dual_path(seed=1)
        order = []
        dual.b.bind("t", 1, lambda p: order.append(p.header["n"]))
        for n in range(10):
            dual.a.send(Packet(src="a", dst="b", protocol="t", flow_id=1,
                               header={"n": n}, payload=bytes(100)))
        dual.loop.run()
        assert sorted(order) == list(range(10))
        assert order != list(range(10))  # genuinely reordered

    def test_both_paths_carry_traffic(self):
        dual = two_hosts_dual_path(seed=2)
        dual.b.bind("t", 1, lambda p: None)
        for n in range(8):
            dual.a.send(Packet(src="a", dst="b", protocol="t", flow_id=1,
                               payload=bytes(10)))
        dual.loop.run()
        assert dual.fast.stats.sent == 4
        assert dual.slow.stats.sent == 4

    def test_alf_absorbs_path_reordering(self):
        """Out-of-order fragments from path diversity reassemble fine,
        and whole ADUs complete out of order without retransmission."""
        dual = two_hosts_dual_path(seed=3, bandwidth_bps=50e6)
        got = {}
        receiver = AlfReceiver(
            dual.loop, dual.b, "a", 1,
            deliver=lambda d: got.setdefault(d.sequence, d.payload),
            expected_adus=12,
        )
        sender = AlfSender(dual.loop, dual.a, "b", 1, mtu=800)
        adus = [Adu(i, octet_payload(2400, seed=80 + i)) for i in range(12)]
        for adu in adus:
            sender.send_adu(adu)
        sender.close()
        dual.loop.run(until=60)
        assert len(got) == 12
        assert all(got[a.sequence] == a.payload for a in adus)
        assert sender.stats.retransmissions == 0  # reordering != loss

    def test_tcp_survives_path_reordering(self):
        dual = two_hosts_dual_path(seed=4, bandwidth_bps=50e6)
        payload = file_payload(50_000, seed=6)
        received = bytearray()
        TcpStyleReceiver(dual.loop, dual.b, "a", 1, deliver=received.extend)
        sender = TcpStyleSender(dual.loop, dual.a, "b", 1)
        sender.send(payload)
        sender.close()
        dual.loop.run(until=300)
        assert bytes(received) == payload
