"""The compiled wire plan inside the ALF transport and sessions.

Steady-state traffic must plan its wire manipulation exactly once: the
sender and receiver of a flow share one cached :class:`CompiledPlan`,
``send_batch`` checksums a whole burst in one vectorized pass, and the
receiver's verification (now an observation comparison instead of
``reassemble_fragments``'s internal pass) still rejects corrupt ADUs.
"""

import pytest

from repro.bench.workloads import octet_payload
from repro.core.adu import Adu, fragment_adu
from repro.errors import TransportError
from repro.ilp.compiler import PlanCache
from repro.net.packet import Packet
from repro.net.topology import two_hosts
from repro.presentation.abstract import ArrayOf, Int32
from repro.presentation.negotiate import LocalSyntax
from repro.transport.alf import AlfReceiver, AlfSender
from repro.transport.session import (
    SessionConfig,
    SessionInitiator,
    SessionListener,
)

SCHEMAS = {"ints": ArrayOf(Int32())}


def make_adus(count=12, size=2500):
    return [
        Adu(i, octet_payload(size, seed=300 + i), {"offset": i * size})
        for i in range(count)
    ]


def make_flow(cache, expected=None, seed=0, **sender_kwargs):
    path = two_hosts(seed=seed, bandwidth_bps=50e6)
    got = {}
    receiver = AlfReceiver(
        path.loop, path.b, "a", 1,
        deliver=lambda d: got.setdefault(d.sequence, d),
        expected_adus=expected,
        plan_cache=cache,
    )
    sender = AlfSender(path.loop, path.a, "b", 1, plan_cache=cache, **sender_kwargs)
    return path, sender, receiver, got


class TestSharedWirePlan:
    def test_one_compile_serves_both_ends(self):
        cache = PlanCache()
        adus = make_adus()
        path, sender, receiver, got = make_flow(cache, expected=len(adus))
        for adu in adus:
            sender.send_adu(adu)
        sender.close()
        path.loop.run(until=60)
        assert len(got) == len(adus)
        # The sender checksummed every ADU and the receiver verified
        # every ADU, all through ONE compiled plan.
        assert cache.stats.misses == 1
        assert cache.stats.hits >= 1
        assert sender.wire_plan is receiver.wire_plan

    def test_wire_plan_is_fully_lowered_single_loop(self):
        cache = PlanCache()
        path, sender, receiver, _ = make_flow(cache)
        assert sender.wire_plan.fully_lowered
        assert sender.wire_plan.n_loops == 1


class TestSendBatch:
    def test_batch_delivers_byte_identical_payloads(self):
        cache = PlanCache()
        adus = make_adus(16)
        path, sender, receiver, got = make_flow(cache, expected=len(adus))
        sender.send_batch(adus)
        sender.close()
        path.loop.run(until=60)
        assert len(got) == len(adus)
        for adu in adus:
            assert got[adu.sequence].payload == adu.payload
            assert got[adu.sequence].name == adu.name
        assert receiver.stats.checksum_failures == 0

    def test_batch_checksums_once(self):
        cache = PlanCache()
        adus = make_adus(8)
        path, sender, receiver, _ = make_flow(cache, expected=len(adus))
        sender.send_batch(adus)
        # The batch pass seeded the memo: fragmenting consumed it, no
        # per-ADU run() was needed (one cache miss, batch counts one
        # lookup).
        sender.close()
        path.loop.run(until=60)
        assert cache.stats.misses == 1

    def test_empty_batch_is_a_noop(self):
        cache = PlanCache()
        path, sender, receiver, got = make_flow(cache)
        sender.send_batch([])
        path.loop.run(until=5)
        assert got == {}

    def test_batch_after_close_rejected(self):
        cache = PlanCache()
        path, sender, receiver, _ = make_flow(cache)
        sender.close()
        with pytest.raises(TransportError):
            sender.send_batch(make_adus(2))


class TestCompiledVerification:
    def test_corrupt_checksum_rejected_nothing_delivered(self):
        cache = PlanCache()
        path, _, receiver, got = make_flow(cache)
        adu = Adu(0, octet_payload(2000, seed=9), {"offset": 0})
        wrong = (adu.checksum + 1) & 0xFFFF
        for fragment in fragment_adu(adu, 800, checksum=wrong):
            path.a.send(
                Packet(
                    src="a",
                    dst="b",
                    protocol="alf",
                    flow_id=1,
                    header={
                        "adu_seq": fragment.adu_sequence,
                        "frag": fragment.index,
                        "nfrags": fragment.total,
                        "adu_len": fragment.adu_length,
                        "adu_csum": fragment.adu_checksum,
                        "name": fragment.name,
                    },
                    payload=fragment.payload,
                )
            )
        path.loop.run(until=5)
        assert receiver.stats.checksum_failures == 1
        assert got == {}
        assert receiver.delivered_count == 0


class TestSessionCompiledPlan:
    def run_handshake(self, listener_syntax, initiator_syntax, cache):
        path = two_hosts(seed=1)
        listener = SessionListener(
            path.loop, path.b, SCHEMAS,
            local_syntax=listener_syntax,
            plan_cache=cache,
        )
        initiator = SessionInitiator(
            path.loop, path.a, "b",
            SessionConfig(schema_name="ints", local_syntax=initiator_syntax),
            SCHEMAS,
            plan_cache=cache,
        )
        path.loop.run(until=5)
        assert initiator.established
        peer = listener.sessions[initiator.session.flow_id]
        return initiator.session, peer

    def test_both_ends_share_one_plan_matching_orders(self):
        cache = PlanCache()
        session, peer = self.run_handshake(
            LocalSyntax("listener", "big"), LocalSyntax("init", "big"), cache
        )
        assert session.compiled_plan is not None
        assert session.compiled_plan is peer.compiled_plan
        assert session.compiled_plan.fully_lowered
        # Same byte order: checksum only, no conversion stage.
        assert session.compiled_plan.n_stages == 1

    def test_byteswap_added_when_byte_orders_differ(self):
        cache = PlanCache()
        session, peer = self.run_handshake(
            LocalSyntax("listener", "little"), LocalSyntax("init", "big"), cache
        )
        assert session.compiled_plan is peer.compiled_plan
        assert session.compiled_plan.fully_lowered
        assert session.compiled_plan.n_stages == 2
        assert "byteswap" in session.compiled_plan.groups[0].label
