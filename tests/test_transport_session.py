"""Association establishment."""

import pytest

from repro.core.adu import Adu
from repro.errors import TransportError
from repro.net.topology import two_hosts
from repro.presentation.abstract import ArrayOf, Int32
from repro.presentation.negotiate import LocalSyntax
from repro.transport.alf import RecoveryMode
from repro.transport.session import (
    SessionConfig,
    SessionInitiator,
    SessionListener,
)

SCHEMAS = {"ints": ArrayOf(Int32())}


def make_pair(loss_rate=0.0, seed=1, **config_kwargs):
    path = two_hosts(seed=seed, loss_rate=loss_rate)
    delivered = []
    listener = SessionListener(
        path.loop, path.b, SCHEMAS,
        deliver=lambda fid, adu: delivered.append((fid, adu)),
    )
    config = SessionConfig(schema_name="ints", **config_kwargs)
    initiator = SessionInitiator(
        path.loop, path.a, "b", config, SCHEMAS,
    )
    return path, listener, initiator, delivered


def test_handshake_establishes_both_sides():
    path, listener, initiator, _ = make_pair()
    path.loop.run(until=5)
    assert initiator.established
    assert initiator.session is not None
    assert initiator.session.sender is not None
    assert initiator.session.flow_id in listener.sessions
    assert listener.sessions[initiator.session.flow_id].receiver is not None


def test_negotiation_agrees_on_both_sides():
    path, listener, initiator, _ = make_pair()
    path.loop.run(until=5)
    session = initiator.session
    peer = listener.sessions[session.flow_id]
    assert session.plan.strategy == peer.plan.strategy == "sender-converts"
    assert session.plan.codec.name == peer.plan.codec.name


def test_identity_when_syntaxes_match():
    path, listener, initiator, _ = make_pair(
        local_syntax=LocalSyntax("init-le", "little")
    )
    path.loop.run(until=5)
    assert initiator.session.plan.strategy == "identity"


def test_data_flows_after_establishment():
    path, listener, initiator, delivered = make_pair()
    established = []
    initiator.on_established = lambda s: established.append(s)
    path.loop.run(until=5)
    session = initiator.session
    session.sender.send_adu(Adu(0, b"\x01\x02\x03\x04", {"n": 0}))
    path.loop.run(until=10)
    assert len(delivered) == 1
    assert delivered[0][0] == session.flow_id
    assert delivered[0][1].payload == b"\x01\x02\x03\x04"


def test_handshake_survives_loss():
    path, listener, initiator, _ = make_pair(loss_rate=0.4, seed=3)
    path.loop.run(until=30)
    assert initiator.established


def test_unknown_schema_rejected():
    path = two_hosts(seed=1)
    SessionListener(path.loop, path.b, SCHEMAS)
    failures = []
    SessionInitiator(
        path.loop, path.a, "b",
        SessionConfig(schema_name="video"),
        {"video": ArrayOf(Int32())},  # initiator knows it, listener doesn't
        on_failed=failures.append,
    )
    path.loop.run(until=5)
    assert failures and "unknown schema" in failures[0]


def test_initiator_must_know_its_own_schema():
    path = two_hosts(seed=1)
    with pytest.raises(TransportError, match="unknown schema"):
        SessionInitiator(
            path.loop, path.a, "b",
            SessionConfig(schema_name="nope"), SCHEMAS,
        )


def test_handshake_times_out_on_black_hole():
    path = two_hosts(seed=2, loss_rate=1.0)
    SessionListener(path.loop, path.b, SCHEMAS)
    failures = []
    initiator = SessionInitiator(
        path.loop, path.a, "b",
        SessionConfig(schema_name="ints"), SCHEMAS,
        on_failed=failures.append, max_attempts=3,
    )
    path.loop.run(until=30)
    assert not initiator.established
    assert failures == ["handshake timed out"]


def test_duplicate_init_is_idempotent():
    """Loss of the ACCEPT causes INIT retransmission; the listener must
    not create a second session."""
    path = two_hosts(seed=4, reverse_loss_rate=0.5)
    listener = SessionListener(path.loop, path.b, SCHEMAS)
    initiator = SessionInitiator(
        path.loop, path.a, "b", SessionConfig(schema_name="ints"), SCHEMAS,
    )
    path.loop.run(until=30)
    assert initiator.established
    assert len(listener.sessions) == 1


def test_pacing_auto_rate_seeds_from_init_rtt():
    path = two_hosts(seed=3)
    SessionListener(path.loop, path.b, SCHEMAS)
    initiator = SessionInitiator(
        path.loop, path.a, "b",
        SessionConfig(schema_name="ints"), SCHEMAS,
        pacing=True, pacing_auto_rate=True,
    )
    path.loop.run(until=5)
    assert initiator.established
    assert initiator.init_rtt is not None and initiator.init_rtt > 0
    pacer = initiator.pacing
    expected = pacer.target_train * pacer.mtu / initiator.init_rtt
    expected = max(
        pacer.min_rate_bytes_per_s,
        min(pacer.max_rate_bytes_per_s, expected),
    )
    # One shaped train per measured round trip, not the blind default.
    assert pacer.rate_bytes_per_s == pytest.approx(expected)
    assert pacer.rate_bytes_per_s != 125_000.0


def test_pacing_auto_rate_off_keeps_configured_default():
    path = two_hosts(seed=3)
    SessionListener(path.loop, path.b, SCHEMAS)
    initiator = SessionInitiator(
        path.loop, path.a, "b",
        SessionConfig(schema_name="ints"), SCHEMAS,
        pacing=True,
    )
    path.loop.run(until=5)
    assert initiator.established
    assert initiator.init_rtt is not None  # sampled either way
    assert initiator.pacing.rate_bytes_per_s == 125_000.0


def test_pacing_auto_rate_skips_retransmitted_handshake():
    # Karn's rule: once the INIT is retransmitted, the ACCEPT could be
    # answering any earlier copy — the sample is ambiguous, so the
    # handshake yields no RTT and the pacer keeps its configured rate.
    path = two_hosts(seed=5, reverse_loss_rate=0.5)
    SessionListener(path.loop, path.b, SCHEMAS)
    initiator = SessionInitiator(
        path.loop, path.a, "b",
        SessionConfig(schema_name="ints"), SCHEMAS,
        pacing=True, pacing_auto_rate=True,
    )
    path.loop.run(until=30)
    assert initiator.established
    assert initiator._attempts > 1  # the seed really forced a resend
    assert initiator.init_rtt is None
    assert initiator.pacing.rate_bytes_per_s == 125_000.0


def test_pacing_auto_rate_without_pacer_is_harmless():
    path = two_hosts(seed=3)
    SessionListener(path.loop, path.b, SCHEMAS)
    initiator = SessionInitiator(
        path.loop, path.a, "b",
        SessionConfig(schema_name="ints"), SCHEMAS,
        pacing_auto_rate=True,
    )
    path.loop.run(until=5)
    assert initiator.established
    assert initiator.pacing is None


def test_recovery_mode_travels():
    path, listener, initiator, _ = make_pair(
        recovery=RecoveryMode.NO_RETRANSMIT
    )
    path.loop.run(until=5)
    peer = listener.sessions[initiator.session.flow_id]
    assert peer.config.recovery is RecoveryMode.NO_RETRANSMIT


def test_shared_drain_listener_delivers_end_to_end():
    path = two_hosts(seed=5)
    delivered = []
    listener = SessionListener(
        path.loop, path.b, SCHEMAS,
        deliver=lambda fid, adu: delivered.append((fid, adu)),
        shared_drain=True,
    )
    initiators = [
        SessionInitiator(
            path.loop, path.a, "b",
            SessionConfig(schema_name="ints"), SCHEMAS,
        )
        for _ in range(3)
    ]
    path.loop.run(until=5)
    assert all(i.established for i in initiators)
    assert listener.drain_engine is not None
    assert listener.drain_engine.flow_count == 3
    payload = b"\x01\x02\x03\x04"
    for initiator in initiators:
        initiator.session.sender.send_adu(Adu(0, payload, {"n": 0}))
    path.loop.run(until=10)
    listener.drain_engine.flush()
    assert sorted(fid for fid, _ in delivered) == sorted(
        i.session.flow_id for i in initiators
    )
    assert all(adu.payload == payload for _, adu in delivered)


def test_listener_close_frees_slot_for_rebinding():
    path = two_hosts(seed=6)
    listener = SessionListener(path.loop, path.b, SCHEMAS, shared_drain=True)
    initiator = SessionInitiator(
        path.loop, path.a, "b", SessionConfig(schema_name="ints"), SCHEMAS,
    )
    path.loop.run(until=5)
    assert initiator.established
    listener.close()
    assert listener.drain_engine.flow_count == 0
    # The protocol slot is free again: a fresh listener can bind and
    # accept a new association on the same host.
    delivered = []
    relisten = SessionListener(
        path.loop, path.b, SCHEMAS,
        deliver=lambda fid, adu: delivered.append((fid, adu)),
    )
    fresh = SessionInitiator(
        path.loop, path.a, "b", SessionConfig(schema_name="ints"), SCHEMAS,
    )
    path.loop.run(until=15)
    assert fresh.established
    fresh.session.sender.send_adu(Adu(0, b"\x09\x08\x07\x06", {"n": 0}))
    path.loop.run(until=20)
    assert [adu.payload for _, adu in delivered] == [b"\x09\x08\x07\x06"]


def test_sharded_listener_delivers_and_tears_down_clean():
    path = two_hosts(seed=7)
    delivered = []
    listener = SessionListener(
        path.loop, path.b, SCHEMAS,
        deliver=lambda fid, adu: delivered.append((fid, adu)),
        shards=2,
    )
    assert listener.sharded is not None
    assert len(listener.sharded.shards) == 2
    initiators = [
        SessionInitiator(
            path.loop, path.a, "b",
            SessionConfig(schema_name="ints"), SCHEMAS,
        )
        for _ in range(4)
    ]
    path.loop.run(until=5)
    assert all(i.established for i in initiators)
    payload = b"\x01\x02\x03\x04"
    for initiator in initiators:
        initiator.session.sender.send_adu(Adu(0, payload, {"n": 0}))
    path.loop.run(until=10)
    listener.sharded.drain()
    assert sorted(fid for fid, _ in delivered) == sorted(
        i.session.flow_id for i in initiators
    )
    assert all(adu.payload == payload for _, adu in delivered)
    # Each flow's receiver lives on its home shard's engine.
    assert sum(s.engine.flow_count for s in listener.sharded.shards) == 4
    for initiator in initiators:
        home = listener.sharded.shard_for("alf", initiator.session.flow_id)
        assert home.engine.delivered_total > 0 or home.engine.flow_count > 0
    sharded = listener.sharded
    listener.close()
    # The listener owns the sharded host: close shut every shard down.
    assert all(s.engine.flow_count == 0 for s in sharded.shards)
    assert all(s.leak_report() == [] for s in sharded.shards)
