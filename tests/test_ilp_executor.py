"""Executors: equivalence of results, superiority of integration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp.executor import IntegratedExecutor, LayeredExecutor
from repro.ilp.pipeline import Pipeline
from repro.machine.profile import MICROVAX_III, MIPS_R2000, SUPERSCALAR
from repro.stages.base import Facts
from repro.stages.checksum import ChecksumComputeStage
from repro.stages.copy import CopyStage
from repro.stages.encrypt import DecryptStage, EncryptStage, XorStreamCipher
from repro.stages.netio import NetworkExtractStage


def make_pipeline():
    return Pipeline(
        [
            CopyStage(name="kernel-copy"),
            ChecksumComputeStage(),
            EncryptStage(XorStreamCipher(5)),
            DecryptStage(XorStreamCipher(5)),
            CopyStage(name="app-copy"),
        ],
        initial_facts={Facts.EXTRACTED, Facts.DEMUXED},
    )


def test_paper_e1_numbers():
    data = bytes(4000)
    pipeline = Pipeline([CopyStage(), ChecksumComputeStage()])
    _, layered = LayeredExecutor(MIPS_R2000).execute(pipeline, data)
    _, integrated = IntegratedExecutor(MIPS_R2000).execute(pipeline, data)
    assert layered.mbps() == pytest.approx(61.02, abs=0.1)
    assert integrated.mbps() == pytest.approx(90.0, abs=0.1)


def test_functional_equivalence():
    """ILP must 'achieve the same result' — byte-identical output."""
    data = bytes(range(256)) * 8
    out_layered, _ = LayeredExecutor(MIPS_R2000).execute(make_pipeline(), data)
    out_integrated, _ = IntegratedExecutor(MIPS_R2000).execute(
        make_pipeline(), data
    )
    assert out_layered == out_integrated == data


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=1, max_size=500))
def test_equivalence_property(data):
    out_a, _ = LayeredExecutor(MIPS_R2000).execute(make_pipeline(), data)
    out_b, _ = IntegratedExecutor(MIPS_R2000).execute(make_pipeline(), data)
    assert out_a == out_b


@pytest.mark.parametrize(
    "profile", [MICROVAX_III, MIPS_R2000, SUPERSCALAR],
    ids=lambda p: p.name,
)
def test_integration_never_slower(profile):
    data = bytes(4000)
    _, layered = LayeredExecutor(profile).execute(make_pipeline(), data)
    _, integrated = IntegratedExecutor(profile).execute(make_pipeline(), data)
    assert integrated.total_cycles <= layered.total_cycles
    assert integrated.memory_passes <= layered.memory_passes


def test_memory_pass_counts():
    data = bytes(1000)
    pipeline = Pipeline([CopyStage(), ChecksumComputeStage(), CopyStage()])
    _, layered = LayeredExecutor(MIPS_R2000).execute(pipeline, data)
    _, integrated = IntegratedExecutor(MIPS_R2000).execute(pipeline, data)
    assert layered.memory_passes == 3
    assert integrated.memory_passes == 1


def test_hardware_stage_costs_nothing_but_bounds_loops():
    data = bytes(1000)
    pipeline = Pipeline([NetworkExtractStage(), CopyStage()])
    _, report = IntegratedExecutor(MIPS_R2000).execute(pipeline, data)
    assert len(report.executions) == 2
    # The hardware extract contributes zero cycles.
    assert report.executions[0].cycles == 0.0
    assert not report.executions[0].memory_pass


def test_report_labels_fused_groups():
    data = bytes(100)
    pipeline = Pipeline([CopyStage(), ChecksumComputeStage()])
    _, report = IntegratedExecutor(MIPS_R2000).execute(pipeline, data)
    assert report.executions[0].label == "copy+checksum-internet"


def test_report_summary_renders():
    data = bytes(100)
    _, report = LayeredExecutor(MIPS_R2000).execute(make_pipeline(), data)
    text = report.summary()
    assert "layered" in text
    assert "Mb/s" in text


def test_report_share():
    data = bytes(1000)
    pipeline = Pipeline(
        [CopyStage(category="transport"), CopyStage(category="application")]
    )
    _, report = LayeredExecutor(MIPS_R2000).execute(pipeline, data)
    assert report.share("transport") == pytest.approx(0.5)
    assert report.share("nothing") == 0.0


def test_growing_stage_charged_on_larger_form():
    """A stage whose output is bigger than its input pays for the big
    side (a conversion reads small, writes large)."""

    class Doubler(CopyStage):
        def apply(self, data):
            return data * 2

    data = bytes(1000)
    pipeline = Pipeline([Doubler(name="doubler")])
    _, report = LayeredExecutor(MIPS_R2000).execute(pipeline, data)
    assert report.executions[0].n_bytes == 2000
