"""Light-weight transfer syntax: byte order, fixed sizes, no padding."""

import pytest

from repro.errors import DecodeError, PresentationError
from repro.presentation.abstract import (
    ArrayOf,
    Boolean,
    Field,
    Int32,
    OctetString,
    Struct,
    UInt32,
    Utf8String,
)
from repro.presentation.lwts import LwtsCodec

le = LwtsCodec("little")
be = LwtsCodec("big")


class TestByteOrder:
    def test_little_endian_int(self):
        assert le.encode(1, Int32()) == b"\x01\x00\x00\x00"

    def test_big_endian_int(self):
        assert be.encode(1, Int32()) == b"\x00\x00\x00\x01"

    def test_names_differ(self):
        assert le.name == "lwts-le"
        assert be.name == "lwts-be"

    def test_invalid_order(self):
        with pytest.raises(PresentationError):
            LwtsCodec("middle")

    def test_cross_order_decode_differs(self):
        encoded = le.encode(1, Int32())
        assert be.decode(encoded, Int32()) == 1 << 24


class TestCompactness:
    def test_no_padding(self):
        encoded = le.encode(b"abcde", OctetString())
        assert len(encoded) == 4 + 5  # count + content, nothing else

    def test_fixed_octets_bare(self):
        assert le.encode(b"ab", OctetString(fixed_length=2)) == b"ab"

    def test_fixed_array_bare(self):
        assert len(le.encode([1, 2], ArrayOf(Int32(), fixed_count=2))) == 8


class TestFixedSize:
    """fixed_size() is what makes sender-side placement computable."""

    def test_scalars(self):
        assert le.fixed_size(Int32()) == 4
        assert le.fixed_size(Boolean()) == 4
        assert le.fixed_size(UInt32()) == 4

    def test_fixed_containers(self):
        schema = Struct(
            (
                Field("a", Int32()),
                Field("b", ArrayOf(Int32(), fixed_count=3)),
                Field("c", OctetString(fixed_length=8)),
            )
        )
        assert le.fixed_size(schema) == 4 + 12 + 8

    def test_variable_is_none(self):
        assert le.fixed_size(OctetString()) is None
        assert le.fixed_size(Utf8String()) is None
        assert le.fixed_size(ArrayOf(Int32())) is None
        assert le.fixed_size(ArrayOf(Utf8String(), fixed_count=2)) is None

    def test_variable_field_poisons_struct(self):
        schema = Struct((Field("a", Int32()), Field("b", Utf8String())))
        assert le.fixed_size(schema) is None


class TestRoundTrips:
    @pytest.mark.parametrize("codec", [le, be], ids=["le", "be"])
    def test_record(self, codec):
        schema = Struct(
            (
                Field("id", UInt32()),
                Field("text", Utf8String()),
                Field("values", ArrayOf(Int32())),
                Field("flag", Boolean()),
            )
        )
        value = {"id": 9, "text": "déjà", "values": [-1, 2, -3], "flag": False}
        assert codec.roundtrip(value, schema) == value

    def test_fixed_size_prediction_matches_encoding(self):
        schema = ArrayOf(Int32(), fixed_count=7)
        assert len(le.encode([0] * 7, schema)) == le.fixed_size(schema)


class TestMalformed:
    def test_truncated(self):
        with pytest.raises(DecodeError):
            le.decode(b"\x01\x00", Int32())

    def test_trailing(self):
        with pytest.raises(DecodeError, match="trailing"):
            le.decode(b"\x01\x00\x00\x00\xff", Int32())

    def test_bool_range(self):
        with pytest.raises(DecodeError):
            le.decode(b"\x07\x00\x00\x00", Boolean())

    def test_bad_utf8(self):
        with pytest.raises(DecodeError, match="UTF-8"):
            le.decode(b"\x01\x00\x00\x00\xff", Utf8String())
