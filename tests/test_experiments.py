"""Every experiment reproduces the paper's *shape*.

These are the acceptance tests of the reproduction: who wins, by roughly
what factor, where the crossovers fall.  Tolerances are loose where the
paper reports round numbers, tight where our model is calibrated exactly.
"""

import pytest

from repro.bench import experiments


@pytest.fixture(scope="module")
def t1():
    return experiments.table1()


@pytest.fixture(scope="module")
def e1():
    return experiments.ilp_copy_checksum()


@pytest.fixture(scope="module")
def e3():
    return experiments.stack_overhead()


class TestTable1:
    def test_all_four_cells_exact(self, t1):
        for row in t1.rows:
            assert row.measured == pytest.approx(row.paper, rel=1e-3), row.label

    def test_uvax_checksum_beats_copy(self, t1):
        assert t1.measured("uVax III checksum") > t1.measured("uVax III copy")

    def test_r2000_copy_beats_checksum(self, t1):
        assert t1.measured("MIPS R2000 copy") > t1.measured(
            "MIPS R2000 checksum"
        )


class TestE1:
    def test_integrated_matches_paper(self, e1):
        assert e1.measured("MIPS R2000 integrated") == pytest.approx(90.0, rel=0.02)

    def test_separate_matches_paper(self, e1):
        assert e1.measured("MIPS R2000 separate") == pytest.approx(60.0, rel=0.05)

    def test_integration_wins_on_both_machines(self, e1):
        assert e1.measured("MIPS R2000 integrated") > e1.measured(
            "MIPS R2000 separate"
        )
        assert e1.measured("uVax III integrated") > e1.measured(
            "uVax III separate"
        )

    def test_memory_passes_halve(self, e1):
        assert e1.row("MIPS R2000 integrated").extra["memory_passes"] == 1
        assert e1.row("MIPS R2000 separate").extra["memory_passes"] == 2


class TestE2:
    def test_conversion_is_4_to_5x_slower(self):
        result = experiments.presentation_cost()
        factor = result.measured("slowdown factor")
        assert 4.0 <= factor <= 5.0  # the paper: "a factor of 4-5 slower"

    def test_absolute_rates(self):
        result = experiments.presentation_cost()
        assert result.measured("word-aligned copy") == pytest.approx(130.0, rel=0.01)
        assert result.measured(
            "ASN.1 integer-array encode (tuned)"
        ) == pytest.approx(28.0, rel=0.01)


class TestE3:
    def test_slowdown_about_30x(self, e3):
        assert 20.0 <= e3.measured("relative slowdown") <= 40.0

    def test_presentation_dominates(self, e3):
        assert e3.measured("presentation share of overhead") >= 0.95


class TestE4:
    def test_checksum_nearly_free_when_fused(self):
        result = experiments.ilp_presentation_checksum()
        alone = result.measured("encode alone")
        fused = result.measured("encode + checksum, integrated")
        separate = result.measured("encode + checksum, separate passes")
        assert alone == pytest.approx(28.0, rel=0.01)
        # Paper: 28 -> 24.  Model: a small penalty, much smaller than the
        # separate-pass penalty.
        assert fused < alone
        assert (alone - fused) / alone < 0.15
        assert fused > separate


class TestE5:
    def test_control_is_tens_not_hundreds(self):
        result = experiments.control_vs_manipulation()
        per_packet = result.measured("control instructions / packet")
        assert 10 < per_packet < 150

    def test_manipulation_dominates(self):
        result = experiments.control_vs_manipulation()
        assert result.measured("manipulation / control ratio") > 10


class TestF1:
    @pytest.fixture(scope="class")
    def f1(self):
        return experiments.alf_pipeline(
            loss_rates=(0.0, 0.02, 0.05), total_bytes=400_000
        )

    def test_parity_without_loss(self, f1):
        tcp = f1.measured("tcp loss=0.00")
        alf = f1.measured("alf loss=0.00")
        assert alf == pytest.approx(tcp, rel=0.1)

    def test_alf_dominates_under_loss(self, f1):
        assert f1.measured("alf loss=0.05") > 3 * f1.measured("tcp loss=0.05")

    def test_tcp_collapses_with_loss(self, f1):
        assert f1.measured("tcp loss=0.05") < 0.5 * f1.measured("tcp loss=0.00")

    def test_alf_stays_nearly_flat(self, f1):
        assert f1.measured("alf loss=0.05") > 0.7 * f1.measured("alf loss=0.00")

    def test_alf_keeps_the_app_busy(self, f1):
        tcp_util = f1.row("tcp loss=0.05").extra["app_utilization"]
        alf_util = f1.row("alf loss=0.05").extra["app_utilization"]
        assert alf_util > 2 * tcp_util


class TestF2:
    def test_survival_decreases_with_size(self):
        result = experiments.adu_size_survival(
            adu_sizes=(128, 8192, 1 << 20), n_trials=100
        )
        survivals = [row.measured for row in result.rows]
        assert survivals[0] > survivals[1] > survivals[2]

    def test_huge_adus_never_survive(self):
        result = experiments.adu_size_survival(
            adu_sizes=(1 << 20,), n_trials=50
        )
        assert result.rows[0].measured < 0.05

    def test_simulation_tracks_analytic(self):
        result = experiments.adu_size_survival(
            adu_sizes=(2048, 8192), n_trials=400
        )
        for row in result.rows:
            assert row.measured == pytest.approx(
                row.extra["analytic"], abs=0.1
            )


class TestF3:
    @pytest.fixture(scope="class")
    def f3(self):
        return experiments.ilp_scaling()

    def test_speedup_grows_with_depth(self, f3):
        r2000 = [
            row.measured for row in f3.rows if row.label.startswith("MIPS")
        ]
        assert r2000 == sorted(r2000)
        assert r2000[0] == pytest.approx(1.0)
        assert r2000[-1] > 1.5

    def test_superscalar_gains_more(self, f3):
        r2000_5 = f3.measured("MIPS R2000 5 stages")
        superscalar_5 = f3.measured("Superscalar (extrapolated) 5 stages")
        assert superscalar_5 > r2000_5


class TestF4:
    def test_speedup_tracks_node_count(self):
        result = experiments.parallel_dispatch(node_counts=(1, 4))
        assert result.measured("1 nodes") == pytest.approx(1.0, rel=0.1)
        assert result.measured("4 nodes") > 3.0


class TestA1:
    @pytest.fixture(scope="class")
    def a1(self):
        return experiments.ordering_constraints()

    def test_three_tier_ordering(self, a1):
        layered = a1.measured("layered")
        integrated = a1.measured("integrated (constraints respected)")
        speculative = a1.measured("integrated (speculative delivery)")
        assert layered < integrated < speculative

    def test_illegal_pipeline_rejected(self, a1):
        assert a1.measured("illegal pipeline rejected") == 1.0


class TestA2:
    @pytest.fixture(scope="class")
    def a2(self):
        return experiments.negotiated_conversion(file_bytes=60_000)

    def test_direct_conversion_beats_canonical(self, a2):
        assert a2.measured(
            "sender-converts end-to-end conversion"
        ) > 2 * a2.measured("canonical-ber end-to-end conversion")

    def test_placement_eliminates_reorder_buffer(self, a2):
        assert a2.measured("reorder buffer, placement@sender") == 0.0
        assert a2.measured("reorder buffer, placement@receiver") > 0.0


def test_all_experiments_render():
    """Every experiment formats into a table (used by EXPERIMENTS.md)."""
    for result in (
        experiments.table1(),
        experiments.presentation_cost(),
        experiments.ilp_presentation_checksum(),
    ):
        text = result.format()
        assert result.experiment_id in text
        assert "paper" in text
