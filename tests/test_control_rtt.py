"""RTT estimation (Jacobson / RFC 6298) and its transport integration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.control.rtt import RttEstimator
from repro.errors import TransportError


class TestEstimator:
    def test_first_sample_initializes(self):
        estimator = RttEstimator()
        rto = estimator.sample(0.1)
        assert estimator.srtt == pytest.approx(0.1)
        assert estimator.rttvar == pytest.approx(0.05)
        assert rto == pytest.approx(0.1 + 4 * 0.05)

    def test_steady_rtt_converges_to_tight_rto(self):
        estimator = RttEstimator()
        for _ in range(100):
            estimator.sample(0.05)
        assert estimator.srtt == pytest.approx(0.05, rel=1e-3)
        assert estimator.rto < 0.07

    def test_variance_widens_rto(self):
        steady = RttEstimator()
        jittery = RttEstimator()
        for index in range(50):
            steady.sample(0.05)
            jittery.sample(0.02 if index % 2 else 0.08)
        assert jittery.rto > steady.rto

    def test_min_rto_clamp(self):
        estimator = RttEstimator(min_rto=0.02)
        for _ in range(100):
            estimator.sample(0.001)
        assert estimator.rto == pytest.approx(0.02)

    def test_max_rto_clamp(self):
        estimator = RttEstimator(max_rto=1.0)
        estimator.sample(10.0)
        assert estimator.rto == pytest.approx(1.0)

    def test_backoff_doubles_and_clamps(self):
        estimator = RttEstimator(initial_rto=0.5, max_rto=1.5)
        assert estimator.back_off() == pytest.approx(1.0)
        assert estimator.back_off() == pytest.approx(1.5)
        assert estimator.back_off() == pytest.approx(1.5)

    def test_negative_sample_rejected(self):
        with pytest.raises(TransportError):
            RttEstimator().sample(-0.1)

    def test_bad_clamps_rejected(self):
        with pytest.raises(TransportError):
            RttEstimator(min_rto=0.0)
        with pytest.raises(TransportError):
            RttEstimator(min_rto=2.0, max_rto=1.0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1,
                    max_size=50))
    def test_rto_always_within_clamps(self, samples):
        estimator = RttEstimator()
        for sample in samples:
            rto = estimator.sample(sample)
            assert estimator.min_rto <= rto <= estimator.max_rto


class TestTransportIntegration:
    def _transfer(self, adaptive, initial_rto, loss, seed=13):
        from repro.bench.workloads import file_payload
        from repro.net.topology import two_hosts
        from repro.transport.tcpstyle import TcpStyleReceiver, TcpStyleSender

        path = two_hosts(seed=seed, loss_rate=loss, bandwidth_bps=50e6,
                         propagation_delay=0.005)
        payload = file_payload(60_000, seed=seed)
        received = bytearray()
        finished = []
        TcpStyleReceiver(path.loop, path.b, "a", 1, deliver=received.extend)
        sender = TcpStyleSender(
            path.loop, path.a, "b", 1, rto=initial_rto,
            adaptive_rto=adaptive,
            on_complete=lambda: finished.append(path.loop.now),
        )
        sender.send(payload)
        sender.close()
        path.loop.run(until=600)
        assert bytes(received) == payload
        return finished[0], sender

    def test_estimator_learns_the_path(self):
        _, sender = self._transfer(adaptive=True, initial_rto=1.0, loss=0.0)
        assert sender.rtt is not None
        assert sender.rtt.samples > 10
        # The path RTT is ~10 ms; the learned RTO must be near it, far
        # below the 1 s initial value.
        assert sender.rtt.rto < 0.2

    def test_adaptive_beats_oversized_fixed_rto_under_loss(self):
        fixed_time, _ = self._transfer(adaptive=False, initial_rto=1.0,
                                       loss=0.03)
        adaptive_time, _ = self._transfer(adaptive=True, initial_rto=1.0,
                                          loss=0.03)
        assert adaptive_time < fixed_time

    def test_disabled_by_default(self):
        _, sender = self._transfer(adaptive=False, initial_rto=0.2, loss=0.0)
        assert sender.rtt is None
