"""Abstract syntax: validation, flattening, path navigation."""

import pytest

from repro.errors import PresentationError
from repro.presentation.abstract import (
    ArrayOf,
    Boolean,
    Field,
    Int32,
    OctetString,
    Struct,
    UInt32,
    Utf8String,
    element_at,
    flatten_paths,
    type_at,
    validate,
)

POINT = Struct((Field("x", Int32()), Field("y", Int32())))
RECORD = Struct(
    (
        Field("id", UInt32()),
        Field("tags", ArrayOf(Utf8String())),
        Field("point", POINT),
        Field("blob", OctetString()),
        Field("ok", Boolean()),
    )
)
RECORD_VALUE = {
    "id": 7,
    "tags": ["a", "b"],
    "point": {"x": 1, "y": -2},
    "blob": b"xyz",
    "ok": True,
}


class TestValidate:
    def test_good_record(self):
        validate(RECORD_VALUE, RECORD)

    def test_int32_range(self):
        validate(2**31 - 1, Int32())
        validate(-(2**31), Int32())
        with pytest.raises(PresentationError, match="range"):
            validate(2**31, Int32())

    def test_uint32_range(self):
        validate(2**32 - 1, UInt32())
        with pytest.raises(PresentationError):
            validate(-1, UInt32())

    def test_bool_is_not_int(self):
        with pytest.raises(PresentationError):
            validate(True, Int32())
        with pytest.raises(PresentationError):
            validate(1, Boolean())

    def test_fixed_length_octets(self):
        validate(b"abcd", OctetString(fixed_length=4))
        with pytest.raises(PresentationError, match="exactly 4"):
            validate(b"abc", OctetString(fixed_length=4))

    def test_fixed_count_array(self):
        validate([1, 2], ArrayOf(Int32(), fixed_count=2))
        with pytest.raises(PresentationError, match="exactly 2"):
            validate([1], ArrayOf(Int32(), fixed_count=2))

    def test_struct_missing_field_named(self):
        with pytest.raises(PresentationError, match="missing"):
            validate({"x": 1}, POINT)

    def test_struct_extra_field_named(self):
        with pytest.raises(PresentationError, match="extra"):
            validate({"x": 1, "y": 2, "z": 3}, POINT)

    def test_error_names_path(self):
        bad = dict(RECORD_VALUE, tags=["a", 5])
        with pytest.raises(PresentationError, match=r"tags\[1\]"):
            validate(bad, RECORD)

    def test_wrong_container_type(self):
        with pytest.raises(PresentationError):
            validate("not a list", ArrayOf(Int32()))
        with pytest.raises(PresentationError):
            validate([1], POINT)


class TestStruct:
    def test_duplicate_fields_rejected(self):
        with pytest.raises(PresentationError):
            Struct((Field("a", Int32()), Field("a", Int32())))

    def test_field_type_lookup(self):
        assert isinstance(POINT.field_type("x"), Int32)
        with pytest.raises(PresentationError):
            POINT.field_type("z")

    def test_describe(self):
        assert "x: Int32" in POINT.describe()
        assert ArrayOf(Int32(), 3).describe() == "ArrayOf(Int32, 3)"
        assert OctetString(4).describe() == "OctetString[4]"


class TestPaths:
    def test_flatten_order(self):
        paths = list(flatten_paths(RECORD_VALUE, RECORD))
        assert paths == [
            ("id",),
            ("tags", 0),
            ("tags", 1),
            ("point", "x"),
            ("point", "y"),
            ("blob",),
            ("ok",),
        ]

    def test_scalar_flattens_to_root(self):
        assert list(flatten_paths(5, Int32())) == [()]

    def test_element_at(self):
        assert element_at(RECORD_VALUE, ("point", "y")) == -2
        assert element_at(RECORD_VALUE, ()) is RECORD_VALUE
        with pytest.raises(PresentationError):
            element_at(RECORD_VALUE, ("missing",))

    def test_type_at(self):
        assert isinstance(type_at(RECORD, ("tags", 0)), Utf8String)
        assert isinstance(type_at(RECORD, ("point",)), Struct)
        with pytest.raises(PresentationError):
            type_at(RECORD, ("id", 0))
