"""Switch and host: routing, queue drops, demultiplexing."""

import pytest

from repro.errors import NetworkError
from repro.net.host import Host
from repro.net.link import Link
from repro.net.packet import HEADER_OVERHEAD_BYTES, Packet
from repro.net.switch import StoreAndForwardSwitch
from repro.net.topology import hosts_via_switch, two_hosts
from repro.sim.eventloop import EventLoop
from repro.sim.rng import RngStreams


def packet(dst="b", protocol="t", flow=1, n=0, size=100):
    return Packet(src="a", dst=dst, protocol=protocol, flow_id=flow,
                  header={"n": n}, payload=bytes(size))


class TestPacket:
    def test_wire_size(self):
        p = packet(size=100)
        assert p.wire_size == HEADER_OVERHEAD_BYTES + 100

    def test_ids_unique(self):
        assert packet().packet_id != packet().packet_id

    def test_copy_is_independent(self):
        p = packet()
        q = p.copy()
        q.header["n"] = 99
        assert p.header["n"] == 0
        assert q.packet_id != p.packet_id

    def test_negative_overhead_rejected(self):
        with pytest.raises(NetworkError):
            Packet("a", "b", "t", 1, header_overhead=-1)


class TestHost:
    def test_flow_dispatch(self):
        loop = EventLoop()
        host = Host(loop, "h")
        got = []
        host.bind("t", 1, got.append)
        host.receive(packet(flow=1))
        host.receive(packet(flow=2))  # unbound
        assert len(got) == 1
        assert host.undeliverable == 1

    def test_protocol_fallback(self):
        loop = EventLoop()
        host = Host(loop, "h")
        got = []
        host.bind_protocol("t", got.append)
        host.receive(packet(flow=77))
        assert len(got) == 1

    def test_double_bind_rejected(self):
        loop = EventLoop()
        host = Host(loop, "h")
        host.bind("t", 1, lambda p: None)
        with pytest.raises(NetworkError):
            host.bind("t", 1, lambda p: None)

    def test_unbind(self):
        loop = EventLoop()
        host = Host(loop, "h")
        host.bind("t", 1, lambda p: None)
        host.unbind("t", 1)
        host.receive(packet(flow=1))
        assert host.undeliverable == 1

    def test_unbind_protocol(self):
        loop = EventLoop()
        host = Host(loop, "h")
        host.bind_protocol("t", lambda p: None)
        host.unbind_protocol("t")
        host.receive(packet(flow=3))
        assert host.undeliverable == 1
        host.unbind_protocol("t")  # idempotent
        # The slot is free again: a fresh listener can bind.
        got = []
        host.bind_protocol("t", got.append)
        host.receive(packet(flow=3))
        assert len(got) == 1

    def test_undeliverable_releases_dma_chain(self):
        from repro.buffers import BufferPool

        loop = EventLoop()
        pool = BufferPool(8, 256, label="rx")
        host = Host(loop, "h", rx_pool=pool)
        host.bind_protocol("t", lambda p: None)
        host.unbind_protocol("t")
        for n in range(3):
            host.receive(packet(flow=n, size=200))
        assert host.undeliverable == 3
        # The DMA'd payload chains went back to the pool, not leaked.
        assert pool.snapshot()["in_use"] == 0
        assert pool.leak_report() == []

    def test_hot_flow_memo_counts_back_to_back_packets(self):
        loop = EventLoop()
        host = Host(loop, "h")
        got = []
        host.bind("t", 1, got.append)
        host.bind("t", 2, got.append)
        for flow in (1, 1, 1, 2, 2, 1):
            host.receive(packet(flow=flow))
        # Runs of the same flow resolve the handler once: 3 of the 6
        # packets ride the memo (the second and third 1s, the second 2).
        assert len(got) == 6
        assert host.demux_memo_hits == 3

    def test_memo_invalidated_by_binding_changes(self):
        loop = EventLoop()
        host = Host(loop, "h")
        got = []
        host.bind("t", 1, got.append)
        host.receive(packet(flow=1))
        host.unbind("t", 1)
        # The memoized handler must not outlive its binding.
        host.receive(packet(flow=1))
        assert host.undeliverable == 1
        assert host.demux_memo_hits == 0

    def test_receive_burst_delivers_in_order(self):
        loop = EventLoop()
        host = Host(loop, "h")
        got = []
        host.bind("t", 1, got.append)
        host.bind("t", 2, got.append)
        train = [packet(flow=1, n=i) for i in range(4)] + [packet(flow=2, n=9)]
        host.receive_burst(train)
        assert [p.header["n"] for p in got] == [0, 1, 2, 3, 9]
        assert host.bursts == 1
        assert host.demux_memo_hits == 3

    def test_send_requires_link(self):
        loop = EventLoop()
        host = Host(loop, "h")
        with pytest.raises(NetworkError, match="no link"):
            host.send(packet())

    def test_send_stamps_source(self):
        path = two_hosts()
        got = []
        path.b.bind("t", 1, got.append)
        outgoing = packet()
        outgoing.src = "wrong"
        path.a.send(outgoing)
        path.loop.run()
        assert got[0].src == "a"


class TestSwitch:
    def make(self, capacity=4):
        loop = EventLoop()
        rng = RngStreams(0)
        switch = StoreAndForwardSwitch(loop, queue_capacity=capacity)
        out = Link(loop, rng.stream("out"), bandwidth_bps=1e6,
                   propagation_delay=0.001)
        got = []
        out.connect(got.append)
        switch.attach("portb", out)
        switch.add_route("b", "portb")
        return loop, switch, got

    def test_forwards_by_destination(self):
        loop, switch, got = self.make()
        switch.receive(packet(dst="b"))
        loop.run()
        assert len(got) == 1
        assert switch.forwarded == 1

    def test_no_route_drops(self):
        loop, switch, got = self.make()
        switch.receive(packet(dst="nowhere"))
        loop.run()
        assert got == []
        assert switch.drops == 1

    def test_queue_overflow_drops(self):
        loop, switch, got = self.make(capacity=2)
        for n in range(10):
            switch.receive(packet(n=n))
        loop.run()
        # Transmission starts after forwarding_delay, so at most
        # capacity packets were queued; the rest dropped.
        assert switch.drops >= 7
        assert len(got) + switch.drops == 10

    def test_queue_depth(self):
        loop, switch, got = self.make(capacity=8)
        for n in range(3):
            switch.receive(packet(n=n))
        assert switch.queue_depth("portb") == 3
        with pytest.raises(NetworkError):
            switch.queue_depth("nope")

    def test_attach_validation(self):
        loop, switch, got = self.make()
        with pytest.raises(NetworkError):
            switch.add_route("c", "missing-port")

    def test_remove_route_stops_forwarding(self):
        loop, switch, got = self.make()
        switch.receive(packet(dst="b"))
        loop.run()
        assert len(got) == 1
        assert switch.remove_route("b")
        switch.receive(packet(dst="b"))
        loop.run()
        assert len(got) == 1
        assert switch.stats.no_route_drops == 1
        assert not switch.remove_route("b")  # already gone

    def test_remove_route_invalidates_hot_memo(self):
        # Regression: the first packet primes the hot-destination memo;
        # a removal that left it intact would keep forwarding "b"
        # traffic through the dead route until another destination
        # happened to evict it.
        loop, switch, got = self.make()
        switch.receive(packet(dst="b"))
        switch.receive(packet(dst="b"))  # memo hit
        loop.run()
        assert switch.route_memo_hits == 1
        switch.remove_route("b")
        switch.receive(packet(dst="b"))
        loop.run()
        assert len(got) == 2
        assert switch.stats.no_route_drops == 1
        assert switch.route_memo_hits == 1  # no post-removal memo ride


class TestTopology:
    def test_two_hosts_duplex(self):
        path = two_hosts()
        got_b, got_a = [], []
        path.b.bind("t", 1, got_b.append)
        path.a.bind("t", 1, got_a.append)
        path.a.send(packet(dst="b"))
        reply = Packet(src="b", dst="a", protocol="t", flow_id=1)
        path.b.send(reply)
        path.loop.run()
        assert len(got_b) == 1 and len(got_a) == 1

    def test_star_topology_routes_all_pairs(self):
        net = hosts_via_switch(["x", "y", "z"])
        got = []
        net.hosts["z"].bind("t", 1, got.append)
        outgoing = Packet(src="x", dst="z", protocol="t", flow_id=1)
        net.hosts["x"].send(outgoing)
        net.loop.run()
        assert len(got) == 1
