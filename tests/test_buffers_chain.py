"""Scatter/gather chains: structural ops are zero-copy and lossless."""

import pytest
from hypothesis import given, strategies as st

from repro.buffers.buffer import Buffer
from repro.buffers.chain import BufferChain
from repro.errors import BufferError_


def chain_of(*parts: bytes) -> BufferChain:
    chain = BufferChain()
    for part in parts:
        chain.append(Buffer.from_bytes(part).view())
    return chain


def test_length_and_linearize():
    chain = chain_of(b"hello ", b"world")
    assert len(chain) == 11
    assert chain.linearize() == b"hello world"


def test_empty_chain():
    chain = BufferChain()
    assert len(chain) == 0
    assert chain.linearize() == b""
    assert chain.is_contiguous()


def test_from_bytes():
    assert BufferChain.from_bytes(b"abc").linearize() == b"abc"
    assert BufferChain.from_bytes(b"").linearize() == b""


def test_prepend_header():
    chain = chain_of(b"payload")
    chain.prepend(Buffer.from_bytes(b"HDR:").view())
    assert chain.linearize() == b"HDR:payload"


def test_empty_segments_dropped():
    chain = chain_of(b"", b"x", b"")
    assert len(chain.segments) == 1


def test_split_mid_segment():
    chain = chain_of(b"abcdef")
    head, tail = chain.split(2)
    assert head.linearize() == b"ab"
    assert tail.linearize() == b"cdef"


def test_split_on_boundary():
    chain = chain_of(b"abc", b"def")
    head, tail = chain.split(3)
    assert head.linearize() == b"abc"
    assert tail.linearize() == b"def"


def test_split_bounds():
    chain = chain_of(b"ab")
    with pytest.raises(BufferError_):
        chain.split(3)
    with pytest.raises(BufferError_):
        chain.split(-1)


def test_trim_front():
    chain = chain_of(b"hdr", b"payload")
    assert chain.trim_front(3).linearize() == b"payload"


def test_chunks():
    chain = chain_of(b"abcdefgh")
    chunks = [c.linearize() for c in chain.chunks(3)]
    assert chunks == [b"abc", b"def", b"gh"]


def test_chunks_bad_size():
    with pytest.raises(BufferError_):
        list(chain_of(b"ab").chunks(0))


def test_extend():
    a = chain_of(b"ab")
    b = chain_of(b"cd", b"ef")
    a.extend(b)
    assert a.linearize() == b"abcdef"


def test_is_contiguous():
    assert chain_of(b"x").is_contiguous()
    assert not chain_of(b"x", b"y").is_contiguous()


@given(
    st.lists(st.binary(min_size=0, max_size=20), max_size=6),
    st.integers(min_value=0, max_value=120),
)
def test_split_is_lossless(parts, at):
    """Splitting at any valid point preserves the content exactly."""
    chain = chain_of(*parts)
    at = min(at, len(chain))
    head, tail = chain.split(at)
    assert head.linearize() + tail.linearize() == chain.linearize()
    assert len(head) == at


@given(
    st.lists(st.binary(min_size=1, max_size=20), max_size=6),
    st.integers(min_value=1, max_value=16),
)
def test_chunks_reassemble(parts, size):
    chain = chain_of(*parts)
    assert b"".join(c.linearize() for c in chain.chunks(size)) == chain.linearize()
