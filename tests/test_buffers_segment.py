"""Refcounted segments and pool recycling under the zero-copy discipline."""

from __future__ import annotations

import pytest

from repro.buffers.chain import BufferChain
from repro.buffers.pool import BufferPool
from repro.buffers.segment import Segment
from repro.errors import BufferError_


class TestSegmentLifecycle:
    def test_wrap_is_zero_copy(self):
        payload = bytes(range(64))
        segment = Segment.wrap(payload, label="t")
        assert segment.tobytes() == payload
        # The segment's view aliases the wrapped object's storage.
        assert segment.memoryview().obj is payload

    def test_share_increments_subview_slices(self):
        segment = Segment.wrap(b"abcdefgh", label="t")
        assert segment.refcount == 1
        twin = segment.share()
        assert segment.refcount == 2
        sub = segment.subview(2, 4)
        assert segment.refcount == 3
        assert sub.tobytes() == b"cdef"
        sub.release()
        twin.release()
        segment.release()

    def test_double_release_raises(self):
        segment = Segment.wrap(b"x" * 8, label="t")
        segment.release()
        with pytest.raises(BufferError_):
            segment.release()

    def test_use_after_release_raises(self):
        segment = Segment.wrap(b"x" * 8, label="t")
        segment.release()
        with pytest.raises(BufferError_):
            segment.tobytes()
        with pytest.raises(BufferError_):
            segment.subview(0, 4)

    def test_on_zero_fires_exactly_once_at_last_release(self):
        fired = []
        segment = Segment.wrap(b"y" * 16, label="t", on_zero=lambda: fired.append(1))
        twin = segment.share()
        segment.release()
        assert fired == []
        twin.release()
        assert fired == [1]


class TestPoolRecycling:
    def test_segment_release_recycles_buffer(self):
        pool = BufferPool(2, 64, label="p")
        segment = pool.allocate_segment(48)
        assert pool.in_use == 1
        assert pool.snapshot()["hits"] == 1
        segment.release()
        assert pool.in_use == 0
        assert pool.snapshot()["recycled"] == 1

    def test_recycle_waits_for_every_reference(self):
        pool = BufferPool(1, 64, label="p")
        segment = pool.allocate_segment(64)
        sub = segment.subview(0, 32)
        segment.release()
        assert pool.in_use == 1  # subview still holds the buffer
        sub.release()
        assert pool.in_use == 0

    def test_double_release_of_pooled_segment_raises(self):
        pool = BufferPool(1, 64, label="p")
        segment = pool.allocate_segment(16)
        segment.release()
        with pytest.raises(BufferError_):
            segment.release()
        # The failed second release must not corrupt the free list.
        assert pool.available == 1

    def test_leak_report_names_outstanding_segments(self):
        pool = BufferPool(2, 64, label="p")
        held = pool.allocate_segment(64)
        leaks = pool.leak_report()
        assert len(leaks) == 1 and "p" in leaks[0]
        held.release()
        assert pool.leak_report() == []

    def test_hit_miss_counters(self):
        pool = BufferPool(1, 64, label="p")
        segment = pool.allocate_segment(64)
        assert pool.try_allocate_segment(64) is None
        snap = pool.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1
        segment.release()

    def test_dma_chain_spans_buffers_and_recycles(self):
        pool = BufferPool(4, 16, label="p")
        payload = bytes(range(40))  # needs 3 buffers of 16
        chain = pool.dma_chain(payload)
        assert chain is not None
        assert len(chain.segments) == 3
        assert chain.tobytes() == payload
        chain.release()
        assert pool.in_use == 0
        assert pool.snapshot()["recycled"] == 3

    def test_dma_chain_exhaustion_returns_none_without_leaking(self):
        pool = BufferPool(2, 16, label="p")
        assert pool.dma_chain(bytes(48)) is None  # needs 3, only 2 exist
        assert pool.in_use == 0  # partial allocation was rolled back
        assert pool.snapshot()["allocation_failures"] == 1


class TestChainReferenceDiscipline:
    def test_split_and_release_balance(self):
        pool = BufferPool(4, 32, label="p")
        chain = pool.dma_chain(bytes(range(100)))
        head, tail = chain.split(37)
        assert head.tobytes() == bytes(range(37))
        assert tail.tobytes() == bytes(range(37, 100))
        chain.release()
        assert pool.in_use > 0  # head/tail hold their own references
        head.release()
        tail.release()
        assert pool.in_use == 0

    def test_chunks_release_balance(self):
        pool = BufferPool(4, 32, label="p")
        chain = pool.dma_chain(bytes(range(100)))
        pieces = list(chain.chunks(44))
        assert b"".join(p.tobytes() for p in pieces) == bytes(range(100))
        chain.release()
        for piece in pieces:
            piece.release()
        assert pool.in_use == 0
        assert pool.leak_report() == []
