"""ALF transport: out-of-order delivery, named losses, recovery modes."""

import pytest

from repro.bench.workloads import octet_payload
from repro.core.adu import Adu
from repro.errors import TransportError
from repro.net.topology import two_hosts
from repro.transport.alf import AlfReceiver, AlfSender, RecoveryMode


def make_adus(count=30, size=2500):
    return [
        Adu(i, octet_payload(size, seed=100 + i), {"offset": i * size})
        for i in range(count)
    ]


def run_transfer(
    adus,
    seed=0,
    loss_rate=0.0,
    reorder_rate=0.0,
    duplicate_rate=0.0,
    recovery=RecoveryMode.TRANSPORT_BUFFER,
    recompute=None,
    horizon=120.0,
    **sender_kwargs,
):
    path = two_hosts(
        seed=seed,
        loss_rate=loss_rate,
        reorder_rate=reorder_rate,
        duplicate_rate=duplicate_rate,
        bandwidth_bps=50e6,
    )
    got = {}
    receiver = AlfReceiver(
        path.loop, path.b, "a", 1,
        deliver=lambda d: got.setdefault(d.sequence, d),
        expected_adus=len(adus),
    )
    finished = []
    sender = AlfSender(
        path.loop, path.a, "b", 1,
        recovery=recovery,
        recompute=recompute,
        on_complete=lambda: finished.append(path.loop.now),
        **sender_kwargs,
    )
    for adu in adus:
        sender.send_adu(adu)
    sender.close()
    path.loop.run(until=horizon)
    return got, sender, receiver, finished


class TestCleanPath:
    def test_all_delivered_in_order_flagged(self):
        adus = make_adus(10)
        got, sender, receiver, finished = run_transfer(adus)
        assert len(got) == 10
        assert all(got[a.sequence].payload == a.payload for a in adus)
        assert receiver.out_of_order_deliveries == 0
        assert finished

    def test_names_travel_with_adus(self):
        adus = make_adus(5)
        got, *_ = run_transfer(adus)
        for adu in adus:
            assert got[adu.sequence].name == {"offset": adu.sequence * 2500}

    def test_duplicate_send_rejected(self):
        path = two_hosts()
        sender = AlfSender(path.loop, path.a, "b", 1)
        sender.send_adu(Adu(0, b"x"))
        with pytest.raises(TransportError, match="already sent"):
            sender.send_adu(Adu(0, b"y"))

    def test_send_after_close_rejected(self):
        path = two_hosts()
        sender = AlfSender(path.loop, path.a, "b", 1)
        sender.close()
        with pytest.raises(TransportError):
            sender.send_adu(Adu(0, b"x"))

    def test_recompute_mode_requires_callback(self):
        path = two_hosts()
        with pytest.raises(TransportError, match="recompute"):
            AlfSender(
                path.loop, path.a, "b", 1,
                recovery=RecoveryMode.APP_RECOMPUTE,
            )


class TestLossRecovery:
    def test_transport_buffer_mode_repairs(self):
        adus = make_adus(30)
        got, sender, receiver, finished = run_transfer(
            adus, seed=2, loss_rate=0.05
        )
        assert len(got) == 30
        assert all(got[a.sequence].payload == a.payload for a in adus)
        assert sender.stats.retransmissions > 0
        assert finished

    def test_out_of_order_delivery_happens(self):
        adus = make_adus(30)
        got, _, receiver, _ = run_transfer(adus, seed=3, loss_rate=0.05)
        assert receiver.out_of_order_deliveries > 0
        assert len(got) == 30

    def test_app_recompute_mode(self):
        adus = make_adus(30)
        recomputed = []

        def recompute(sequence):
            recomputed.append(sequence)
            return adus[sequence]

        got, sender, _, finished = run_transfer(
            adus, seed=4, loss_rate=0.05,
            recovery=RecoveryMode.APP_RECOMPUTE, recompute=recompute,
        )
        assert len(got) == 30
        assert sender.adus_recomputed == len(recomputed) > 0
        assert sender.buffered_bytes == 0  # nothing retained, ever
        assert finished

    def test_no_retransmit_mode_accepts_loss(self):
        adus = make_adus(40, size=800)
        got, sender, _, finished = run_transfer(
            adus, seed=5, loss_rate=0.10,
            recovery=RecoveryMode.NO_RETRANSMIT,
        )
        assert sender.stats.retransmissions == 0
        assert 0 < len(got) < 40  # losses accepted
        assert finished  # completion without repair

    def test_buffer_mode_retains_until_acked(self):
        path = two_hosts(bandwidth_bps=1e3)  # glacial: nothing acked yet
        sender = AlfSender(path.loop, path.a, "b", 1)
        sender.send_adu(Adu(0, bytes(1000)))
        assert sender.buffered_bytes == 1000

    def test_reordering_and_duplication_tolerated(self):
        adus = make_adus(30)
        got, *_ = run_transfer(
            adus, seed=6, loss_rate=0.03, reorder_rate=0.1,
            duplicate_rate=0.1,
        )
        assert len(got) == 30
        assert all(got[a.sequence].payload == a.payload for a in adus)

    def test_max_attempts_abandons(self):
        path = two_hosts(seed=7, loss_rate=1.0)  # black hole
        sender = AlfSender(
            path.loop, path.a, "b", 1, rto=0.05, max_attempts=3,
        )
        sender.send_adu(Adu(0, bytes(100)))
        sender.close()
        path.loop.run(until=30)
        assert 0 in sender.adus_abandoned
        assert sender.outstanding_count == 0


class TestReceiverReporting:
    def test_missing_names_in_app_terms(self):
        """Losses are reported as ADU names, not byte ranges."""
        path = two_hosts(seed=8)
        receiver = AlfReceiver(
            path.loop, path.b, "a", 1, deliver=lambda d: None,
        )
        sender = AlfSender(path.loop, path.a, "b", 1, mtu=500)
        # Send one ADU but drop its second fragment by hand: build the
        # fragments and inject only some via a private path.
        from repro.core.adu import fragment_adu
        from repro.net.packet import Packet

        adu = Adu(0, bytes(1200), {"frame": 3, "slot": 1})
        fragments = fragment_adu(adu, 500)
        for fragment in fragments[:-1]:
            packet = Packet(
                src="a", dst="b", protocol="alf", flow_id=1,
                header={
                    "adu_seq": fragment.adu_sequence,
                    "frag": fragment.index,
                    "nfrags": fragment.total,
                    "adu_len": fragment.adu_length,
                    "adu_csum": fragment.adu_checksum,
                    "name": fragment.name,
                    "ts": 0.0,
                },
                payload=fragment.payload,
            )
            path.a.send(packet)
        path.loop.run(until=1.0)
        assert receiver.missing_names() == [{"frame": 3, "slot": 1}]

    def test_expected_adus_completion_flag(self):
        adus = make_adus(5)
        got, _, receiver, _ = run_transfer(adus)
        assert receiver.complete

    def test_determinism(self):
        adus = make_adus(20)
        a = run_transfer(adus, seed=11, loss_rate=0.05)[1].stats.retransmissions
        b = run_transfer(adus, seed=11, loss_rate=0.05)[1].stats.retransmissions
        assert a == b
