"""RPC over ALF: marshalling, scatter, dispatch, replies."""

import pytest

from repro.apps.rpc import RpcClient, RpcServer
from repro.errors import ApplicationError
from repro.net.topology import two_hosts
from repro.presentation.abstract import (
    ArrayOf,
    Field,
    Int32,
    Struct,
    Utf8String,
)

ADD_PARAMS = Struct((Field("x", Int32()), Field("y", Int32())))


def make_pair(loss_rate=0.0, seed=1):
    path = two_hosts(seed=seed, loss_rate=loss_rate)
    server = RpcServer(path)
    client = RpcClient(path, server)
    return path, server, client


def test_simple_call():
    path, server, client = make_pair()
    server.register("add", ADD_PARAMS, Int32(), lambda x, y: x + y)
    call = client.call("add", ADD_PARAMS, Int32(), x=1, y=2)
    path.loop.run(until=5)
    result = client.result_of(call)
    assert result.value == 3
    assert result.procedure == "add"
    assert result.rtt > 0
    assert server.calls_served == 1


def test_structured_args_and_results():
    path, server, client = make_pair()
    params = Struct((Field("samples", ArrayOf(Int32())),))
    result_type = Struct((Field("total", Int32()), Field("count", Int32())))
    server.register(
        "stats", params, result_type,
        lambda samples: {"total": sum(samples), "count": len(samples)},
    )
    call = client.call("stats", params, result_type, samples=[1, 2, 3])
    path.loop.run(until=5)
    assert client.result_of(call).value == {"total": 6, "count": 3}


def test_string_args():
    path, server, client = make_pair()
    params = Struct((Field("name", Utf8String()),))
    server.register("greet", params, Utf8String(), lambda name: f"hi {name}")
    call = client.call("greet", params, Utf8String(), name="bob")
    path.loop.run(until=5)
    assert client.result_of(call).value == "hi bob"


def test_multiple_concurrent_calls():
    path, server, client = make_pair()
    server.register("add", ADD_PARAMS, Int32(), lambda x, y: x + y)
    calls = [
        client.call("add", ADD_PARAMS, Int32(), x=n, y=n) for n in range(10)
    ]
    path.loop.run(until=10)
    for n, call in enumerate(calls):
        assert client.result_of(call).value == 2 * n


def test_survives_loss():
    path, server, client = make_pair(loss_rate=0.1, seed=3)
    server.register("add", ADD_PARAMS, Int32(), lambda x, y: x + y)
    calls = [
        client.call("add", ADD_PARAMS, Int32(), x=n, y=1) for n in range(8)
    ]
    path.loop.run(until=60)
    for n, call in enumerate(calls):
        assert client.result_of(call).value == n + 1


def test_arguments_scattered_into_regions():
    path, server, client = make_pair()
    server.register("add", ADD_PARAMS, Int32(), lambda x, y: x + y)
    client.call("add", ADD_PARAMS, Int32(), x=7, y=9)
    path.loop.run(until=5)
    regions = server.app_space.region_names()
    assert "call0:x" in regions and "call0:y" in regions
    assert server.scatter_entries == 2


def test_bad_arguments_rejected_client_side():
    path, server, client = make_pair()
    server.register("add", ADD_PARAMS, Int32(), lambda x, y: x + y)
    from repro.errors import PresentationError

    with pytest.raises(PresentationError):
        client.call("add", ADD_PARAMS, Int32(), x="not an int", y=2)


def test_unknown_procedure():
    path, server, client = make_pair()
    client.call("nothere", ADD_PARAMS, Int32(), x=1, y=2)
    with pytest.raises(ApplicationError, match="no procedure"):
        path.loop.run(until=5)


def test_duplicate_registration():
    path, server, _ = make_pair()
    server.register("p", ADD_PARAMS, Int32(), lambda x, y: 0)
    with pytest.raises(ApplicationError):
        server.register("p", ADD_PARAMS, Int32(), lambda x, y: 0)


def test_pending_result_raises():
    _, _, client = make_pair()
    with pytest.raises(ApplicationError, match="not completed"):
        client.result_of(99)
