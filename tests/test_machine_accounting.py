"""Cycle ledger: attribution and aggregation."""

import pytest

from repro.errors import MachineModelError
from repro.machine.accounting import CycleLedger
from repro.machine.costs import CHECKSUM_COST, COPY_COST
from repro.machine.profile import MICROVAX_III, MIPS_R2000


@pytest.fixture
def ledger():
    return CycleLedger(MIPS_R2000)


def test_charge_returns_cycles(ledger):
    cycles = ledger.charge("copy", COPY_COST, 4000)
    assert cycles == pytest.approx(MIPS_R2000.cycles(COPY_COST, 4000))
    assert ledger.total_cycles == pytest.approx(cycles)


def test_categories_accumulate(ledger):
    ledger.charge("copy", COPY_COST, 4000, category="transport")
    ledger.charge("csum", CHECKSUM_COST, 4000, category="transport")
    ledger.charge("conv", COPY_COST, 4000, category="presentation")
    by_cat = ledger.cycles_by_category()
    assert set(by_cat) == {"transport", "presentation"}
    assert by_cat["transport"] > by_cat["presentation"]


def test_share(ledger):
    ledger.charge("a", COPY_COST, 4000, category="x")
    ledger.charge("b", COPY_COST, 4000, category="y")
    assert ledger.share("x") == pytest.approx(0.5)
    assert ledger.share("missing") == 0.0


def test_share_empty_ledger(ledger):
    assert ledger.share("anything") == 0.0


def test_labels(ledger):
    ledger.charge("copy", COPY_COST, 100)
    ledger.charge("copy", COPY_COST, 100)
    assert ledger.cycles_by_label()["copy"] == pytest.approx(
        2 * MIPS_R2000.cycles(COPY_COST, 100)
    )


def test_charge_instructions(ledger):
    cycles = ledger.charge_instructions("demux", 50)
    assert cycles == pytest.approx(60.0)  # 50 instr * 1.2 CPI
    assert ledger.cycles_by_category()["control"] == pytest.approx(60.0)


def test_charge_cycles_rejects_negative(ledger):
    with pytest.raises(MachineModelError):
        ledger.charge_cycles("x", -5)


def test_throughput(ledger):
    ledger.charge("copy", COPY_COST, 4000)
    assert ledger.throughput_mbps(4000) == pytest.approx(130.0, rel=1e-3)


def test_throughput_empty_raises(ledger):
    with pytest.raises(MachineModelError):
        ledger.throughput_mbps(4000)


def test_reset(ledger):
    ledger.charge("copy", COPY_COST, 4000)
    ledger.reset()
    assert ledger.total_cycles == 0
    assert ledger.entries == []


def test_merged(ledger):
    other = CycleLedger(MIPS_R2000)
    ledger.charge("a", COPY_COST, 100)
    other.charge("b", COPY_COST, 100)
    merged = ledger.merged(other)
    assert len(merged.entries) == 2
    assert merged.total_cycles == pytest.approx(
        ledger.total_cycles + other.total_cycles
    )


def test_merged_rejects_different_profiles(ledger):
    other = CycleLedger(MICROVAX_III)
    with pytest.raises(MachineModelError):
        ledger.merged(other)
