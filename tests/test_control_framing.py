"""Framing over streams and byte-stream reassembly."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.control.framing import LengthPrefixFramer, StreamReassembler
from repro.errors import FramingError


class TestFramer:
    def test_frame_roundtrip(self):
        framer = LengthPrefixFramer()
        wire = framer.frame(b"hello")
        assert framer.feed(wire) == [b"hello"]

    def test_partial_feed(self):
        framer = LengthPrefixFramer()
        wire = framer.frame(b"hello world")
        assert framer.feed(wire[:3]) == []
        assert framer.buffered_bytes == 3
        assert framer.feed(wire[3:]) == [b"hello world"]
        assert framer.buffered_bytes == 0

    def test_multiple_frames_in_one_feed(self):
        framer = LengthPrefixFramer()
        wire = framer.frame(b"a") + framer.frame(b"bb") + framer.frame(b"")
        assert framer.feed(wire) == [b"a", b"bb", b""]

    def test_corrupt_length_rejected(self):
        framer = LengthPrefixFramer()
        with pytest.raises(FramingError, match="corrupt"):
            framer.feed(struct.pack(">I", 2**31) + b"xx")

    def test_oversize_frame_rejected(self):
        with pytest.raises(FramingError):
            LengthPrefixFramer().frame(b"x" * (2**31))

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.binary(max_size=30), max_size=8),
        st.integers(min_value=1, max_value=7),
    )
    def test_any_chunking_reassembles(self, frames, chunk):
        """The framing property: however the stream is sliced, the exact
        frame sequence comes back."""
        framer = LengthPrefixFramer()
        wire = b"".join(framer.frame(f) for f in frames)
        out = []
        for start in range(0, len(wire), chunk):
            out.extend(framer.feed(wire[start : start + chunk]))
        assert out == frames


class TestStreamReassembler:
    def test_in_order(self):
        stream = StreamReassembler()
        stream.insert(0, b"ab")
        stream.insert(2, b"cd")
        assert stream.take_ready() == b"abcd"
        assert stream.next_offset == 4

    def test_hole_blocks(self):
        stream = StreamReassembler()
        stream.insert(2, b"cd")
        assert stream.take_ready() == b""
        assert stream.blocked_bytes == 2
        assert stream.has_holes

    def test_fill_releases(self):
        stream = StreamReassembler()
        stream.insert(2, b"cd")
        stream.insert(0, b"ab")
        assert stream.take_ready() == b"abcd"
        assert not stream.has_holes

    def test_duplicates_ignored(self):
        stream = StreamReassembler()
        stream.insert(0, b"ab")
        stream.take_ready()
        stream.insert(0, b"ab")
        assert stream.take_ready() == b""

    def test_overlap_trimmed(self):
        stream = StreamReassembler()
        stream.insert(0, b"abcd")
        stream.take_ready()
        stream.insert(2, b"cdEF")  # overlaps already-delivered data
        assert stream.take_ready() == b"EF"

    def test_empty_insert(self):
        stream = StreamReassembler()
        stream.insert(0, b"")
        assert stream.take_ready() == b""

    def test_negative_offset(self):
        with pytest.raises(FramingError):
            StreamReassembler().insert(-1, b"x")

    @settings(max_examples=40, deadline=None)
    @given(st.permutations(list(range(12))))
    def test_any_order_reassembles_exactly(self, order):
        data = bytes(range(120))
        stream = StreamReassembler()
        out = bytearray()
        for index in order:
            stream.insert(index * 10, data[index * 10 : index * 10 + 10])
            out += stream.take_ready()
        assert bytes(out) == data

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=1, max_value=20),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_delivery_is_prefix_of_ground_truth(self, segments):
        """Whatever overlapping mess arrives, delivered bytes are always
        the correct contiguous prefix of the true stream."""
        truth = bytes(i % 256 for i in range(100))
        stream = StreamReassembler()
        delivered = bytearray()
        for offset, length in segments:
            stream.insert(offset, truth[offset : offset + length])
            delivered += stream.take_ready()
        assert bytes(delivered) == truth[: len(delivered)]
        assert stream.next_offset == len(delivered)
