"""Application address space and scatter delivery."""

import pytest

from repro.buffers.appspace import ApplicationAddressSpace, Region, ScatterMap
from repro.buffers.buffer import Buffer
from repro.errors import BufferError_


@pytest.fixture
def space():
    s = ApplicationAddressSpace(label="app")
    s.add_region("file", 100)
    return s


def test_add_and_read_region(space):
    assert space.read_region("file") == b"\x00" * 100


def test_duplicate_region_rejected(space):
    with pytest.raises(BufferError_):
        space.add_region("file", 10)


def test_unknown_region(space):
    with pytest.raises(BufferError_):
        space.region("nope")


def test_region_validation():
    with pytest.raises(BufferError_):
        Region("r", Buffer(10), 5, 10)  # overruns buffer
    with pytest.raises(BufferError_):
        Region("r", Buffer(10), -1, 5)


def test_add_existing(space):
    region = Region("extra", Buffer(10), 0, 10)
    space.add_existing(region)
    assert "extra" in space.region_names()
    with pytest.raises(BufferError_):
        space.add_existing(region)


def test_linear_delivery(space):
    scatter = ScatterMap.linear("file", 10, 5)
    moved = space.deliver(b"hello", scatter)
    assert moved == 5
    assert space.read_region("file")[10:15] == b"hello"
    assert space.bytes_delivered == 5


def test_scattered_delivery(space):
    space.add_region("arg0", 4)
    space.add_region("arg1", 4)
    scatter = ScatterMap()
    scatter.add(0, "arg0", 0, 4)
    scatter.add(4, "arg1", 0, 4)
    space.deliver(b"AAAABBBB", scatter)
    assert space.read_region("arg0") == b"AAAA"
    assert space.read_region("arg1") == b"BBBB"
    assert len(scatter) == 2
    assert scatter.total_bytes == 8


def test_delivery_source_overrun(space):
    scatter = ScatterMap.linear("file", 0, 10)
    with pytest.raises(BufferError_):
        space.deliver(b"short", scatter)


def test_delivery_region_overrun(space):
    scatter = ScatterMap.linear("file", 98, 5)
    with pytest.raises(BufferError_):
        space.deliver(b"hello", scatter)


def test_scatter_negative_fields_rejected():
    scatter = ScatterMap()
    with pytest.raises(BufferError_):
        scatter.add(-1, "r", 0, 4)


def test_out_of_order_placement(space):
    """The ALF property: later file pieces land before earlier ones."""
    space.deliver(b"world", ScatterMap.linear("file", 5, 5))
    space.deliver(b"hello", ScatterMap.linear("file", 0, 5))
    assert space.read_region("file")[:10] == b"helloworld"
