"""Concurrency and eviction pressure on the compile-once caches.

Both the ILP :class:`PlanCache` and the presentation
:class:`CodecCache` promise thread-safe compile-under-lock semantics:
concurrent lookups of one key compile exactly once, the LRU bound holds
under pressure, and every thread receives a plan/codec that produces
correct results even while other threads are evicting it.
"""

import random
import threading

from repro.ilp.compiler import PlanCache
from repro.ilp.pipeline import Pipeline
from repro.machine.profile import MIPS_R2000
from repro.presentation.abstract import ArrayOf, Int32
from repro.presentation.compiler import CodecCache
from repro.presentation.lwts import LwtsCodec
from repro.stages.checksum import ChecksumComputeStage, internet_checksum
from repro.stages.encrypt import WordXorStage

N_THREADS = 8
N_ROUNDS = 40


def secure_pipeline(key: int) -> Pipeline:
    return Pipeline(
        [WordXorStage(key, name="encrypt"), ChecksumComputeStage()],
        name="secure",
    )


def run_threads(worker) -> list[Exception]:
    errors: list[Exception] = []
    barrier = threading.Barrier(N_THREADS)

    def wrapped(tid: int) -> None:
        try:
            barrier.wait()
            worker(tid)
        except Exception as exc:  # pragma: no cover - surfaced by assert
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(tid,)) for tid in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


def test_plan_cache_compiles_each_key_once_under_contention():
    cache = PlanCache(capacity=64)

    def worker(tid: int) -> None:
        for round_ in range(N_ROUNDS):
            key = round_ % 4  # four distinct pipeline shapes
            plan = cache.get_or_compile(secure_pipeline(key), MIPS_R2000)
            data = bytes(random.Random(tid * 1000 + round_).randbytes(257))
            out, observations = plan.run(data)
            assert out == WordXorStage(key).apply(data)
            assert observations["checksum-internet"] == internet_checksum(out)

    assert run_threads(worker) == []
    snapshot = cache.snapshot()
    # Four shapes -> exactly four compiles, everything else served hot.
    assert snapshot["misses"] == 4
    assert snapshot["hits"] == N_THREADS * N_ROUNDS - 4
    assert snapshot["entries"] == 4
    assert snapshot["evictions"] == 0


def test_plan_cache_eviction_pressure_keeps_bound_and_correctness():
    cache = PlanCache(capacity=3)

    def worker(tid: int) -> None:
        for round_ in range(N_ROUNDS):
            key = (tid + round_) % 8  # more shapes than capacity
            plan = cache.get_or_compile(secure_pipeline(key), MIPS_R2000)
            data = bytes(random.Random(round_).randbytes(100 + key))
            out, _ = plan.run(data)
            # An evicted-then-recompiled plan must still be correct.
            assert out == WordXorStage(key).apply(data)

    assert run_threads(worker) == []
    snapshot = cache.snapshot()
    assert snapshot["entries"] <= 3
    assert snapshot["evictions"] > 0
    assert snapshot["misses"] > 8  # recompiles after eviction
    assert len(cache) <= 3


def test_codec_cache_compiles_each_schema_once_under_contention():
    cache = CodecCache(capacity=64)
    schemas = [ArrayOf(Int32(), fixed_count=count) for count in (4, 8, 16, 32)]
    codec = LwtsCodec(byte_order="big")

    def worker(tid: int) -> None:
        rng = random.Random(tid)
        for round_ in range(N_ROUNDS):
            schema = schemas[round_ % len(schemas)]
            compiled = cache.get_or_compile(schema, codec)
            values = [rng.randrange(-(2**31), 2**31) for _ in range(schema.fixed_count)]
            assert codec.decode(compiled.encode(values), schema) == values

    assert run_threads(worker) == []
    snapshot = cache.snapshot()
    assert snapshot["misses"] == len(schemas)
    assert snapshot["hits"] == N_THREADS * N_ROUNDS - len(schemas)
    assert snapshot["evictions"] == 0


def test_codec_cache_eviction_pressure_keeps_bound_and_correctness():
    cache = CodecCache(capacity=2)
    schemas = [ArrayOf(Int32(), fixed_count=count) for count in range(1, 9)]
    codec = LwtsCodec(byte_order="little")

    def worker(tid: int) -> None:
        rng = random.Random(100 + tid)
        for round_ in range(N_ROUNDS):
            schema = schemas[(tid + round_) % len(schemas)]
            compiled = cache.get_or_compile(schema, codec)
            values = [rng.randrange(-(2**31), 2**31) for _ in range(schema.fixed_count)]
            assert codec.decode(compiled.encode(values), schema) == values

    assert run_threads(worker) == []
    snapshot = cache.snapshot()
    assert snapshot["entries"] <= 2
    assert snapshot["evictions"] > 0
    assert snapshot["misses"] > len(schemas)


def test_cache_stats_counters_lose_no_updates_under_contention():
    """The raw counter object shards bump concurrently: every recorded
    hit/miss/eviction must survive, and a snapshot must be internally
    consistent (hits + misses == lookups) at any moment."""
    from repro.machine.accounting import AtomicCacheStats

    stats = AtomicCacheStats()
    per_thread = 5000

    def worker(tid: int) -> None:
        for i in range(per_thread):
            stats.record_hit()
            if i % 2 == 0:
                stats.record_miss()
            if i % 5 == 0:
                stats.record_eviction()
            if i % 100 == 0:
                view = stats.as_dict()
                assert view["lookups"] == view["hits"] + view["misses"]

    assert run_threads(worker) == []
    assert stats.hits == N_THREADS * per_thread
    assert stats.misses == N_THREADS * (per_thread // 2)
    assert stats.evictions == N_THREADS * (per_thread // 5)
    assert stats.lookups == stats.hits + stats.misses
    stats.reset()
    assert stats.as_dict()["lookups"] == 0


def test_plan_cache_shared_by_key_across_shard_engines():
    """One plan cache serving several shard drain engines: every shard
    compiles the shared shape once, then hits, with exact counters."""
    cache = PlanCache(capacity=8)

    def worker(tid: int) -> None:
        for _ in range(N_ROUNDS):
            plan = cache.get_or_compile(secure_pipeline(0xFEED), MIPS_R2000)
            out, _ = plan.run(b"\x00" * 64)
            assert out == WordXorStage(0xFEED).apply(b"\x00" * 64)

    assert run_threads(worker) == []
    snapshot = cache.snapshot()
    assert snapshot["misses"] == 1
    assert snapshot["hits"] == N_THREADS * N_ROUNDS - 1
