"""The public API surface: imports, errors, version."""

import pytest

import repro
from repro import errors


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_error_hierarchy():
    """Every library error is catchable as ReproError."""
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            if obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name


def test_specific_hierarchies():
    assert issubclass(errors.DecodeError, errors.PresentationError)
    assert issubclass(errors.OrderingConstraintError, errors.PipelineError)
    assert issubclass(errors.ConnectionClosedError, errors.TransportError)


def test_quickstart_snippet_works():
    """The README/docstring quickstart must keep working."""
    from repro import transfer_file
    from repro.bench import experiments

    table = experiments.table1()
    assert "Table 1" in table.format()
    result = transfer_file(b"hello" * 1000, loss_rate=0.05, seed=1)
    assert result.ok


def test_machine_profiles_exposed():
    assert repro.MIPS_R2000.name == "MIPS R2000"
    assert repro.MICROVAX_III.clock_hz > 0
    assert repro.SUPERSCALAR.alu_cycles < 1


def test_recovery_modes_enum():
    assert len(repro.RecoveryMode) == 3
