"""Packet trains: link aggregation, burst handoff, adaptive epochs."""

from __future__ import annotations

import random

import pytest

from repro.buffers.pool import BufferPool
from repro.errors import NetworkError, TransportError
from repro.machine.accounting import ShardCounters, TrainCounters
from repro.net.host import Host
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.shard import Burst, BurstRing, ShardedHost
from repro.net.switch import StoreAndForwardSwitch
from repro.net.topology import two_hosts
from repro.sim.eventloop import EventLoop
from repro.sim.rng import RngStreams
from repro.transport.alf.receiver import PROTOCOL
from repro.transport.drain import SharedDrainEngine

from tests.test_net_shard import adu_packets, adu_payload, bind_flow, make_sharded


def packet(dst="b", protocol="t", flow=1, n=0, size=100):
    return Packet(src="a", dst=dst, protocol=protocol, flow_id=flow,
                  header={"n": n}, payload=random.Random(n).randbytes(size))


class BurstSink:
    """A receiver that records whether delivery came as trains or singles."""

    def __init__(self):
        self.trains: list[list[Packet]] = []
        self.singles: list[Packet] = []

    def receive(self, pkt: Packet) -> None:
        self.singles.append(pkt)

    def receive_burst(self, packets: list[Packet]) -> None:
        self.trains.append(list(packets))

    @property
    def delivered(self) -> list[Packet]:
        every = list(self.singles)
        for train in self.trains:
            every.extend(train)
        return every


def make_link(sink, max_train=4, train_window=1e-3, **kwargs):
    loop = EventLoop()
    link = Link(
        loop,
        random.Random(7),
        bandwidth_bps=1e9,
        propagation_delay=1e-3,
        max_train=max_train,
        train_window=train_window,
        **kwargs,
    )
    link.connect(sink.receive)
    return loop, link


class TestLinkTrains:
    def test_validation(self):
        loop = EventLoop()
        with pytest.raises(NetworkError):
            Link(loop, random.Random(0), max_train=0)
        with pytest.raises(NetworkError):
            Link(loop, random.Random(0), train_window=-1.0)

    def test_full_train_delivers_as_one_burst(self):
        sink = BurstSink()
        loop, link = make_link(sink, max_train=4)
        for n in range(5):
            link.send(packet(n=n))
        loop.run()
        # Four fill the first train; the fifth opens (and closes) its own.
        assert [len(t) for t in sink.trains] == [4, 1]
        assert sink.singles == []
        assert [p.header["n"] for p in sink.delivered] == [0, 1, 2, 3, 4]
        assert link.stats.trains == 2
        assert link.stats.train_packets == 5
        assert link.stats.delivered == 5

    def test_window_close_delivers_partial_train(self):
        sink = BurstSink()
        loop, link = make_link(sink, max_train=100)
        for n in range(3):
            link.send(packet(n=n))
        loop.run()  # window expires: the train leaves with 3 aboard
        for n in range(3, 5):
            link.send(packet(n=n))
        loop.run()
        assert [len(t) for t in sink.trains] == [3, 2]

    def test_connect_auto_detects_burst_receiver(self):
        sink = BurstSink()
        loop, link = make_link(sink)
        assert link._burst_receiver == sink.receive_burst

    def test_trains_fall_back_to_singles_without_burst_entry(self):
        got = []
        loop = EventLoop()
        link = Link(loop, random.Random(7), max_train=4, train_window=1e-3)
        link.connect(got.append)  # plain callable: no burst upcall
        for n in range(4):
            link.send(packet(n=n))
        loop.run()
        assert [p.header["n"] for p in got] == [0, 1, 2, 3]
        assert link.stats.trains == 1  # aggregation still happened

    def test_reordered_packets_leave_the_train(self):
        sink = BurstSink()
        loop, link = make_link(sink, reorder_rate=1.0)
        for n in range(4):
            link.send(packet(n=n))
        loop.run()
        assert sink.trains == []
        assert len(sink.singles) == 4
        assert link.stats.reordered == 4
        assert link.stats.trains == 0

    def test_duplicates_ride_alone(self):
        sink = BurstSink()
        loop, link = make_link(sink, duplicate_rate=1.0)
        for n in range(3):
            link.send(packet(n=n))
        loop.run()
        # Originals aggregate; each duplicate arrives later, by itself.
        assert [len(t) for t in sink.trains] == [3]
        assert len(sink.singles) == 3
        assert link.stats.duplicated == 3

    def test_train_mode_is_byte_identical_to_packet_mode(self):
        def run(max_train):
            sink = BurstSink()
            loop = EventLoop()
            link = Link(
                loop,
                random.Random(99),
                bandwidth_bps=1e9,
                propagation_delay=1e-3,
                loss_rate=0.2,
                corrupt_rate=0.2,
                duplicate_rate=0.1,
                reorder_rate=0.1,
                max_train=max_train,
                train_window=1e-3,
            )
            link.connect(sink.receive)
            for n in range(60):
                link.send(packet(n=n))
            loop.run()
            return sink, link

        packet_sink, packet_link = run(max_train=1)
        train_sink, train_link = run(max_train=8)
        # The failure draws happen in send(), in the same order, so the
        # two modes lose/corrupt/duplicate the exact same packets.
        for attr in ("sent", "lost", "corrupted", "duplicated", "reordered"):
            assert getattr(train_link.stats, attr) == getattr(
                packet_link.stats, attr
            )

        def fingerprint(sink):
            return sorted(
                (p.header["n"], bytes(p.payload)) for p in sink.delivered
            )

        assert fingerprint(train_sink) == fingerprint(packet_sink)

    def test_train_counters_record_deliveries(self):
        counters = TrainCounters()
        counters.record_train(4)
        counters.record_train(4)
        counters.record_train(1)
        snap = counters.snapshot()
        assert snap["trains"] == 3
        assert snap["train_packets"] == 9
        assert snap["packets_per_train"] == pytest.approx(3.0)
        assert snap["train_len_hist"] == {1: 1, 4: 2}
        counters.reset()
        assert counters.snapshot()["trains"] == 0


class TestHostBurstPoisoned:
    def test_burst_continues_past_poisoned_middle_packet(self):
        loop = EventLoop()
        pool = BufferPool(8, 256, label="rx")
        host = Host(loop, "h", rx_pool=pool)
        got = []
        host.bind("t", 1, got.append)
        train = [
            packet(flow=1, n=0, size=200),
            packet(flow=9, n=1, size=200),  # poisoned: no handler bound
            packet(flow=1, n=2, size=200),
        ]
        host.receive_burst(train)
        # The burst keeps flowing past the undeliverable packet.
        assert [p.header["n"] for p in got] == [0, 2]
        assert host.undeliverable == 1
        assert host.received == 3
        for delivered in got:
            delivered.payload.release()
        assert pool.snapshot()["in_use"] == 0
        assert pool.leak_report() == []

    def test_poisoned_packet_releases_wire_chain(self):
        loop = EventLoop()
        pool = BufferPool(8, 256, label="rx")
        host = Host(loop, "h", rx_pool=pool)
        got = []
        host.bind("t", 1, got.append)
        poisoned = packet(flow=9, n=1, size=0)
        # The wire already handed this packet a DMA chain; the host must
        # release it even though no handler will ever see the packet.
        poisoned.payload = pool.dma_chain(bytes(200))
        host.receive_burst(
            [packet(flow=1, n=0, size=0), poisoned, packet(flow=1, n=2, size=0)]
        )
        assert [p.header["n"] for p in got] == [0, 2]
        assert pool.snapshot()["in_use"] == 0
        assert pool.leak_report() == []

    def test_memo_not_poisoned_by_undeliverable_flow(self):
        loop = EventLoop()
        host = Host(loop, "h")
        got = []
        host.bind("t", 1, got.append)
        host.receive_burst([packet(flow=9, n=0), packet(flow=9, n=1)])
        assert host.undeliverable == 2
        # An undeliverable flow never lands in the memo; a later binding
        # resolves freshly.
        host.bind("t", 9, got.append)
        host.receive_burst([packet(flow=9, n=2)])
        assert [p.header["n"] for p in got] == [2]


class TestSwitchBurst:
    def make(self):
        loop = EventLoop()
        switch = StoreAndForwardSwitch(loop, queue_capacity=64)
        out = Link(loop, RngStreams(0).stream("out"), bandwidth_bps=1e9,
                   propagation_delay=1e-3)
        got = []
        out.connect(got.append)
        switch.attach("portb", out)
        switch.add_route("b", "portb")
        return loop, switch, got

    def test_burst_forwards_with_route_memo(self):
        loop, switch, got = self.make()
        switch.receive_burst([packet(dst="b", n=n) for n in range(5)])
        loop.run()
        assert [p.header["n"] for p in got] == [0, 1, 2, 3, 4]
        assert switch.bursts == 1
        # One table lookup for the train's first packet, memo after.
        assert switch.route_memo_hits == 4

    def test_burst_drops_unroutable_and_continues(self):
        loop, switch, got = self.make()
        train = [packet(dst="b", n=0), packet(dst="nowhere", n=1),
                 packet(dst="b", n=2)]
        switch.receive_burst(train)
        loop.run()
        assert [p.header["n"] for p in got] == [0, 2]
        assert switch.drops == 1

    def test_route_change_invalidates_memo(self):
        loop, switch, got = self.make()
        switch.receive(packet(dst="b"))
        assert switch.route_memo_hits == 0
        switch.receive(packet(dst="b"))
        assert switch.route_memo_hits == 1
        switch.add_route("c", "portb")  # any table change drops the memo
        switch.receive(packet(dst="b"))
        assert switch.route_memo_hits == 1


class TestBurstRing:
    def test_fifo_across_growth(self):
        ring = BurstRing(capacity=2)
        bursts = [Burst([packet(n=n)]) for n in range(5)]
        for burst in bursts:
            ring.push(burst)
        assert len(ring) == 5
        assert ring.expansions >= 1
        popped = [ring.pop() for _ in range(5)]
        assert popped == bursts
        assert ring.pop() is None
        snap = ring.snapshot()
        assert snap["pushes"] == 5
        assert snap["pops"] == 5
        assert snap["packets"] == 5
        assert snap["max_depth"] == 5
        assert snap["depth"] == 0

    def test_interleaved_push_pop_wraps(self):
        ring = BurstRing(capacity=4)
        out = []
        for n in range(10):
            ring.push(Burst([packet(n=n)]))
            if n >= 1:
                out.append(ring.pop())
        while (burst := ring.pop()) is not None:
            out.append(burst)
        # FIFO order survives wrapping around the fixed slots.
        assert [b.packets[0].header["n"] for b in out] == list(range(10))
        assert ring.snapshot()["expansions"] == 0  # never held more than 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(NetworkError):
            BurstRing(capacity=0)


class TestAdaptiveEpochs:
    def test_validation(self):
        loop = EventLoop()
        with pytest.raises(TransportError):
            SharedDrainEngine(loop, adaptive_boost=0.5)
        with pytest.raises(TransportError):
            SharedDrainEngine(loop, ramp_rows=0)
        with pytest.raises(TransportError):
            SharedDrainEngine(loop, ewma_alpha=0.0)

    def test_non_adaptive_effective_values_are_configured_values(self):
        loop = EventLoop()
        engine = SharedDrainEngine(loop, max_rows=64, max_delay=1e-3)
        assert engine.effective_max_rows == 64
        assert engine.effective_max_delay == 1e-3
        assert engine.flush_horizon == 1e-3

    def test_idle_adaptive_engine_flushes_immediately(self):
        loop = EventLoop()
        engine = SharedDrainEngine(
            loop, max_rows=64, max_delay=1e-3, adaptive=True
        )
        assert engine.effective_max_delay == 0.0
        assert engine.effective_max_rows == 4  # the 1/16th floor
        assert engine.flush_horizon == 0.0

    def test_backlog_deepens_epochs_past_configured_delay(self):
        loop = EventLoop()
        engine = SharedDrainEngine(
            loop, max_rows=64, max_delay=1e-3, adaptive=True, ramp_rows=16
        )
        for _ in range(8):
            engine._observe_backlog(64)
        assert engine.backlog_ewma > 16
        # Sustained pressure stretches the window past max_delay ...
        assert engine.effective_max_delay > engine.max_delay
        # ... but never past the boost ceiling.
        assert engine.effective_max_delay <= (
            engine.adaptive_boost * engine.max_delay
        )
        assert engine.effective_max_rows == 64
        assert engine.flush_horizon >= engine.effective_max_delay

    def test_silence_decays_pressure_back_to_immediate(self):
        loop = EventLoop()
        engine = SharedDrainEngine(
            loop, max_rows=64, max_delay=1e-3, adaptive=True
        )
        for _ in range(8):
            engine._observe_backlog(64)
        loop.run(until=loop.now + 20e-3)  # 20 half-lives of silence
        assert engine.backlog_ewma < 1.0
        assert engine.effective_max_delay == 0.0

    def test_snapshot_reports_adaptive_state(self):
        loop = EventLoop()
        engine = SharedDrainEngine(loop, max_rows=32, adaptive=True)
        snap = engine.snapshot()
        assert snap["adaptive"] is True
        assert "backlog_ewma" in snap
        assert "effective_max_rows" in snap
        fixed = SharedDrainEngine(loop, max_rows=32).snapshot()
        assert fixed["adaptive"] is False
        assert "backlog_ewma" not in fixed


class TestShardedTrainDemux:
    def test_one_probe_per_flow_run(self):
        path, sharded, counters = make_sharded()
        delivered: dict[int, list[bytes]] = {}
        bind_flow(sharded, 3, delivered)
        bind_flow(sharded, 5, delivered)
        train = adu_packets(3, [adu_payload(1), adu_payload(2)]) + adu_packets(
            5, [adu_payload(3)]
        )
        sharded.receive_burst(train)
        sharded.drain()
        snap = counters.snapshot()
        assert snap["demux_runs"] == 2  # one probe per flow-run
        assert snap["probes_saved"] == 1  # the second flow-3 packet
        assert snap["packets"] == 3
        assert snap["train_packets"] == 3
        assert snap["train_len_hist"] == {4: 1}  # 3 rides the <=4 bucket
        assert delivered[3] and delivered[5]

    def test_one_burst_per_shard_even_interleaved(self):
        path, sharded, counters = make_sharded()
        delivered: dict[int, list[bytes]] = {}
        flow_a = 0
        flow_b = next(
            fid
            for fid in range(1, 64)
            if sharded.shard_for(PROTOCOL, fid)
            is not sharded.shard_for(PROTOCOL, flow_a)
        )
        bind_flow(sharded, flow_a, delivered)
        bind_flow(sharded, flow_b, delivered)
        a = adu_packets(flow_a, [adu_payload(1), adu_payload(2)])
        b = adu_packets(flow_b, [adu_payload(3), adu_payload(4)])
        # Fully interleaved: a, b, a, b — worst case for run grouping,
        # but still exactly one burst (and one service) per shard.
        train = [a[0], b[0], a[1], b[1]]
        sharded.receive_burst(train)
        sharded.drain()
        snap = counters.snapshot()
        assert snap["worker_services"] == 2
        assert snap["demux_runs"] == 4  # four runs of one packet each
        assert delivered[flow_a] and delivered[flow_b]

    def test_threaded_ring_carries_whole_bursts(self):
        path, sharded, counters = make_sharded(threaded=True)
        try:
            delivered: dict[int, list[bytes]] = {}
            bind_flow(sharded, 3, delivered)
            payloads = [adu_payload(40 + i) for i in range(6)]
            sharded.receive_burst(adu_packets(3, payloads))
            sharded.drain()
            assert delivered[3] == payloads
            home = sharded.shard_for(PROTOCOL, 3)
            ring = home.ring.snapshot()
            assert ring["pushes"] == 1  # one descriptor for the train
            assert ring["packets"] == 6
            assert ring["depth"] == 0
        finally:
            sharded.shutdown()

    def test_threaded_adaptive_settles_deep_epochs(self):
        # Satellite regression: the worker's settle horizon must come
        # from the engine's *effective* delay.  With adaptive epochs the
        # effective window can exceed max_delay, and a worker that only
        # ran to max_delay would strand armed flushes undelivered.
        path, sharded, counters = make_sharded(
            threaded=True, adaptive=True, max_delay=2e-4
        )
        try:
            delivered: dict[int, list[bytes]] = {}
            flows = [1, 2, 3, 4]
            for flow_id in flows:
                bind_flow(sharded, flow_id, delivered)
            expected = {
                flow_id: [adu_payload(100 * flow_id + i) for i in range(6)]
                for flow_id in flows
            }
            streams = {
                flow_id: adu_packets(flow_id, expected[flow_id])
                for flow_id in flows
            }
            for round_no in range(6):
                for flow_id in flows:
                    sharded.receive_burst([streams[flow_id][round_no]])
            sharded.drain()
            for flow_id in flows:
                assert delivered[flow_id] == expected[flow_id]
            reports = sharded.shutdown()
            assert all(not leaks for leaks in reports.values())
        finally:
            sharded.stop()

    def test_serial_adaptive_delivers_everything(self):
        path, sharded, counters = make_sharded(adaptive=True, max_delay=1e-4)
        delivered: dict[int, list[bytes]] = {}
        bind_flow(sharded, 7, delivered)
        payloads = [adu_payload(70 + i) for i in range(8)]
        sharded.receive_burst(adu_packets(7, payloads))
        sharded.drain(until=path.loop.now + 1.0)
        assert delivered[7] == payloads


class TestLinkToShardIntegration:
    def test_train_link_lands_whole_trains_on_the_front(self):
        path = two_hosts(seed=5, max_train=8, train_window=1e-3)
        counters = ShardCounters()
        sharded = ShardedHost(path.b, 4, counters=counters)
        sharded.attach_link(path.a_to_b)
        delivered: dict[int, list[bytes]] = {}
        bind_flow(sharded, 3, delivered)
        payloads = [adu_payload(10 + i) for i in range(8)]
        for pkt in adu_packets(3, payloads):
            path.a.send(pkt)
        path.loop.run()
        sharded.drain()
        assert delivered[3] == payloads
        snap = counters.snapshot()
        # The link aggregated; the front demuxed runs, not packets.
        assert snap["demux_runs"] < snap["packets"]
        assert snap["probes_saved"] > 0

    def test_unclaimed_protocol_in_train_falls_back_to_front(self):
        path = two_hosts(seed=5, max_train=8, train_window=1e-3)
        sharded = ShardedHost(path.b, 2, counters=ShardCounters())
        sharded.attach_link(path.a_to_b)
        other = []
        path.b.bind("mgmt", 1, other.append)
        delivered: dict[int, list[bytes]] = {}
        bind_flow(sharded, 3, delivered)
        payloads = [adu_payload(20)]
        for pkt in adu_packets(3, payloads):
            path.a.send(pkt)
        path.a.send(Packet(src="a", dst="b", protocol="mgmt", flow_id=1,
                           header={}, payload=b"ping"))
        path.loop.run()
        sharded.drain()
        assert delivered[3] == payloads
        assert len(other) == 1  # the mgmt packet took the front's demux
