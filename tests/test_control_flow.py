"""Flow control: windows, AIMD, pacing."""

import pytest

from repro.control.flow import AimdCongestionControl, RatePacer, SlidingWindow
from repro.errors import TransportError


class TestSlidingWindow:
    def test_basic_accounting(self):
        window = SlidingWindow(1000)
        assert window.available() == 1000
        window.on_send(400)
        assert window.in_flight == 400
        assert window.available() == 600
        window.on_ack(400)
        assert window.in_flight == 0

    def test_overrun_rejected(self):
        window = SlidingWindow(100)
        window.on_send(100)
        with pytest.raises(TransportError, match="overrun"):
            window.on_send(1)

    def test_can_send(self):
        window = SlidingWindow(100)
        assert window.can_send(100)
        assert not window.can_send(101)

    def test_ack_beyond_sent_rejected(self):
        window = SlidingWindow(100)
        window.on_send(10)
        with pytest.raises(TransportError):
            window.on_ack(11)

    def test_ack_is_cumulative_idempotent(self):
        window = SlidingWindow(100)
        window.on_send(50)
        window.on_ack(30)
        window.on_ack(20)  # older ack: no regression
        assert window.acked == 30

    def test_window_update(self):
        window = SlidingWindow(100)
        window.update_window(200)
        assert window.available() == 200
        with pytest.raises(TransportError):
            window.update_window(0)

    def test_construction_validation(self):
        with pytest.raises(TransportError):
            SlidingWindow(0)


class TestAimd:
    def test_slow_start_doubles(self):
        congestion = AimdCongestionControl(mss=1000)
        assert congestion.window_bytes() == 1000
        congestion.on_ack(1000)
        assert congestion.window_bytes() == 2000

    def test_loss_halves(self):
        congestion = AimdCongestionControl(mss=1000, initial_cwnd=8000)
        congestion.on_loss()
        assert congestion.window_bytes() == 4000
        assert congestion.losses == 1

    def test_floor_at_one_mss(self):
        congestion = AimdCongestionControl(mss=1000)
        for _ in range(5):
            congestion.on_loss()
        assert congestion.window_bytes() >= 1000

    def test_congestion_avoidance_is_linear(self):
        congestion = AimdCongestionControl(mss=1000, initial_cwnd=8000)
        congestion.on_loss()  # ssthresh = 4000, cwnd = 4000
        before = congestion.window_bytes()
        congestion.on_ack(1000)
        growth = congestion.window_bytes() - before
        assert 0 < growth <= 1000  # additive, not doubling

    def test_validation(self):
        with pytest.raises(TransportError):
            AimdCongestionControl(mss=0)


class TestPacer:
    def test_burst_then_blocked(self):
        pacer = RatePacer(rate_bps=8000, burst_bytes=1000)
        assert pacer.try_send(0.0, 1000)
        assert not pacer.try_send(0.0, 1)

    def test_refill_over_time(self):
        pacer = RatePacer(rate_bps=8000, burst_bytes=1000)
        pacer.try_send(0.0, 1000)
        assert pacer.try_send(0.5, 500)  # 8000bps = 1000B/s; 0.5s = 500B

    def test_refill_caps_at_burst(self):
        pacer = RatePacer(rate_bps=8000, burst_bytes=100)
        assert not pacer.try_send(1000.0, 101)

    def test_delay_until_ready(self):
        pacer = RatePacer(rate_bps=8000, burst_bytes=1000)
        pacer.try_send(0.0, 1000)
        assert pacer.delay_until_ready(0.0, 500) == pytest.approx(0.5)
        assert pacer.delay_until_ready(0.0, 0) == 0.0

    def test_out_of_band_rate_change(self):
        pacer = RatePacer(rate_bps=8000, burst_bytes=1000)
        pacer.set_rate(16000)
        pacer.try_send(0.0, 1000)
        assert pacer.delay_until_ready(0.0, 500) == pytest.approx(0.25)

    def test_time_must_advance(self):
        pacer = RatePacer(rate_bps=8000, burst_bytes=1000)
        pacer.try_send(1.0, 10)
        with pytest.raises(TransportError):
            pacer.try_send(0.5, 10)

    def test_validation(self):
        with pytest.raises(TransportError):
            RatePacer(0, 100)
        with pytest.raises(TransportError):
            RatePacer(100, 0)
