"""Shape assertions for the extension experiments (E6, F5, A3-A5)."""

import pytest

from repro.bench import experiments


class TestE6WordFusion:
    @pytest.fixture(scope="class")
    def e6(self):
        return experiments.word_fusion(payload_bytes=16384)

    def test_outputs_identical(self, e6):
        assert e6.measured("outputs identical") == 1.0

    def test_fusion_speedup_substantial(self, e6):
        assert e6.measured("fusion speedup") > 1.4

    def test_fused_absolute_rate(self, e6):
        assert e6.measured("4 kernels, fused (model)") > e6.measured(
            "4 kernels, layered (model)"
        )


class TestF5Fec:
    @pytest.fixture(scope="class")
    def f5(self):
        return experiments.fec_survival(n_trials=150)

    def test_fec_beats_plain_at_every_size(self, f5):
        for size in (2048, 8192, 65536):
            plain = f5.measured(f"ADU {size} B plain")
            fec = f5.measured(f"ADU {size} B FEC(k=8)")
            assert fec > plain

    def test_fec_rescues_large_adus(self, f5):
        assert f5.measured("ADU 65536 B plain") < 0.4
        assert f5.measured("ADU 65536 B FEC(k=8)") > 0.9

    def test_simulation_confirms_analytics(self, f5):
        simulated = f5.measured("ADU 8192 B FEC, simulated")
        analytic = f5.measured("ADU 8192 B FEC(k=8)")
        assert simulated == pytest.approx(analytic, abs=0.1)


class TestA3Outboard:
    @pytest.fixture(scope="class")
    def a3(self):
        return experiments.outboard_analysis()

    def test_linear_file_is_cheap_to_steer(self, a3):
        assert a3.measured("steering ratio, linear file") < 0.01

    def test_rpc_steering_exceeds_data(self, a3):
        assert a3.measured("steering ratio, per-element RPC") >= 1.0

    def test_outboard_useless_under_conversion(self, a3):
        raw = a3.measured("outboard speedup bound, raw transfer")
        toolkit = a3.measured("outboard speedup bound, toolkit conversion")
        assert raw > 1.5
        assert toolkit < 1.1


class TestA4Headers:
    @pytest.fixture(scope="class")
    def a4(self):
        return experiments.header_overhead()

    def test_shared_saves_bytes_and_parses(self, a4):
        assert a4.measured("shared header bytes") < a4.measured(
            "layered header bytes"
        )
        assert a4.measured("shared parse instructions") < a4.measured(
            "layered parse instructions"
        )

    def test_gain_largest_at_cell_size(self, a4):
        cell = a4.measured("wire efficiency at 44 B payload")
        big = a4.measured("wire efficiency at 4096 B payload")
        assert cell > big > 0.99


class TestA5Cache:
    @pytest.fixture(scope="class")
    def a5(self):
        return experiments.cache_depletion()

    def test_small_cache_pays_per_pass(self, a5):
        assert a5.measured("1 KB cache") == pytest.approx(3.0)

    def test_big_cache_amortizes(self, a5):
        assert a5.measured("64 KB cache") == pytest.approx(1.0)
