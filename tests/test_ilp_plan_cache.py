"""PlanCache: LRU behaviour, key sensitivity, counters, thread safety."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import PipelineError
from repro.ilp.compiler import PlanCache, shared_plan_cache
from repro.ilp.pipeline import Pipeline
from repro.machine.profile import MICROVAX_III, MIPS_R2000
from repro.stages.base import Facts
from repro.stages.checksum import ChecksumComputeStage
from repro.stages.copy import CopyStage
from repro.stages.encrypt import WordXorStage
from repro.stages.presentation import ByteswapStage


def wire_pipeline(name: str = "wire", key: int = 0xA5A5A5A5) -> Pipeline:
    return Pipeline(
        [CopyStage(), ChecksumComputeStage(), WordXorStage(key)], name=name
    )


def test_miss_then_hits():
    cache = PlanCache()
    first = cache.get_or_compile(wire_pipeline(), MIPS_R2000)
    second = cache.get_or_compile(wire_pipeline(), MIPS_R2000)
    assert first is second
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1
    assert cache.stats.lookups == 2
    assert cache.stats.hit_rate == 0.5
    assert len(cache) == 1


def test_pipeline_display_name_does_not_miss():
    # Transports mint a fresh pipeline name per ADU; the cache must not
    # care.
    cache = PlanCache()
    a = cache.get_or_compile(wire_pipeline(name="adu-0"), MIPS_R2000)
    b = cache.get_or_compile(wire_pipeline(name="adu-1"), MIPS_R2000)
    assert a is b
    assert cache.stats.misses == 1


@pytest.mark.parametrize(
    "variant",
    ["profile", "speculative", "xor_key", "initial_facts", "stage_order"],
)
def test_key_sensitivity(variant):
    cache = PlanCache()
    cache.get_or_compile(wire_pipeline(), MIPS_R2000)
    if variant == "profile":
        cache.get_or_compile(wire_pipeline(), MICROVAX_III)
    elif variant == "speculative":
        cache.get_or_compile(wire_pipeline(), MIPS_R2000, speculative=True)
    elif variant == "xor_key":
        # WordXorStage's lowering_token puts the key into the plan key
        # even though the stage *name* also differs; use an explicit
        # name collision to prove the token alone suffices.
        collide = Pipeline(
            [CopyStage(), ChecksumComputeStage(), WordXorStage(1, name="xor")],
            name="wire",
        )
        other = Pipeline(
            [CopyStage(), ChecksumComputeStage(), WordXorStage(2, name="xor")],
            name="wire",
        )
        cache.get_or_compile(collide, MIPS_R2000)
        cache.get_or_compile(other, MIPS_R2000)
        assert cache.stats.misses == 3
        return
    elif variant == "initial_facts":
        facted = Pipeline(
            [CopyStage(), ChecksumComputeStage(), WordXorStage(0xA5A5A5A5)],
            name="wire",
            initial_facts={Facts.EXTRACTED},
        )
        cache.get_or_compile(facted, MIPS_R2000)
    elif variant == "stage_order":
        reordered = Pipeline(
            [ChecksumComputeStage(), CopyStage(), WordXorStage(0xA5A5A5A5)],
            name="wire",
        )
        cache.get_or_compile(reordered, MIPS_R2000)
    assert cache.stats.misses == 2
    assert cache.stats.hits == 0


def test_lru_eviction_order():
    cache = PlanCache(capacity=2)
    cache.get_or_compile(wire_pipeline(key=1), MIPS_R2000)
    cache.get_or_compile(wire_pipeline(key=2), MIPS_R2000)
    # Touch key=1 so key=2 becomes least recently used.
    cache.get_or_compile(wire_pipeline(key=1), MIPS_R2000)
    cache.get_or_compile(wire_pipeline(key=3), MIPS_R2000)  # evicts key=2
    assert cache.stats.evictions == 1
    assert len(cache) == 2
    # key=1 survived, key=2 did not.
    cache.get_or_compile(wire_pipeline(key=1), MIPS_R2000)
    assert cache.stats.hits == 2
    cache.get_or_compile(wire_pipeline(key=2), MIPS_R2000)
    assert cache.stats.misses == 4  # keys 1,2,3 plus the re-miss of 2
    assert cache.stats.evictions == 2


def test_capacity_must_be_positive():
    with pytest.raises(PipelineError, match="capacity"):
        PlanCache(capacity=0)
    with pytest.raises(PipelineError, match="capacity"):
        PlanCache(capacity=-3)


def test_clear_resets_entries_and_stats():
    cache = PlanCache()
    cache.get_or_compile(wire_pipeline(), MIPS_R2000)
    cache.get_or_compile(wire_pipeline(), MIPS_R2000)
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.lookups == 0
    assert cache.stats.hit_rate == 0.0


def test_snapshot_shape():
    cache = PlanCache(capacity=4)
    cache.get_or_compile(wire_pipeline(), MIPS_R2000)
    snapshot = cache.snapshot()
    assert snapshot == {
        "hits": 0,
        "misses": 1,
        "evictions": 0,
        "lookups": 1,
        "hit_rate": 0.0,
        "entries": 1,
        "capacity": 4,
    }


def test_shared_cache_is_a_singleton():
    assert shared_plan_cache() is shared_plan_cache()


def test_thread_safety_single_compile():
    cache = PlanCache()
    barrier = threading.Barrier(8)
    plans = []

    def worker():
        barrier.wait()
        return cache.get_or_compile(wire_pipeline(), MIPS_R2000)

    with ThreadPoolExecutor(max_workers=8) as pool:
        plans = [f.result() for f in [pool.submit(worker) for _ in range(8)]]

    assert all(plan is plans[0] for plan in plans)
    # Compilation happens under the lock: exactly one miss.
    assert cache.stats.misses == 1
    assert cache.stats.hits == 7


def test_thread_safety_mixed_keys():
    cache = PlanCache(capacity=4)
    barrier = threading.Barrier(16)

    def worker(index):
        barrier.wait()
        for _ in range(20):
            cache.get_or_compile(wire_pipeline(key=index % 4), MIPS_R2000)

    with ThreadPoolExecutor(max_workers=16) as pool:
        for future in [pool.submit(worker, i) for i in range(16)]:
            future.result()

    assert cache.stats.lookups == 16 * 20
    assert cache.stats.misses == 4
    assert len(cache) == 4
