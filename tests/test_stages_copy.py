"""Copy-family stages."""

import pytest

from repro.buffers.appspace import ApplicationAddressSpace, ScatterMap
from repro.errors import StageError
from repro.machine.costs import COPY_COST
from repro.stages.copy import BufferForRetransmitStage, CopyStage, MoveToAppStage


class TestCopyStage:
    def test_identity_copy(self):
        data = bytearray(b"abc")
        out = CopyStage().apply(bytes(data))
        assert out == b"abc"
        data[0] = 0  # mutating the source never affects the copy
        assert out == b"abc"

    def test_cost_is_copy(self):
        assert CopyStage().cost == COPY_COST

    def test_custom_category(self):
        assert CopyStage(category="application").category == "application"


class TestRetransmitBuffer:
    def test_retains_passing_data(self):
        stage = BufferForRetransmitStage()
        stage.apply(b"one")
        stage.apply(b"two")
        assert stage.buffered_bytes == 6
        assert stage.retrieve(0) == b"one"
        assert stage.retrieve(1) == b"two"

    def test_release_through(self):
        stage = BufferForRetransmitStage()
        for part in (b"a", b"bb", b"ccc"):
            stage.apply(part)
        stage.release_through(1)
        assert stage.buffered_bytes == 3
        assert stage.retrieve(0) == b"ccc"

    def test_release_bounds(self):
        stage = BufferForRetransmitStage()
        stage.apply(b"x")
        with pytest.raises(StageError):
            stage.release_through(5)

    def test_retrieve_bounds(self):
        with pytest.raises(StageError):
            BufferForRetransmitStage().retrieve(0)

    def test_capacity_enforced(self):
        stage = BufferForRetransmitStage(capacity_bytes=4)
        stage.apply(b"abcd")
        with pytest.raises(StageError, match="full"):
            stage.apply(b"e")

    def test_reset(self):
        stage = BufferForRetransmitStage()
        stage.apply(b"x")
        stage.reset()
        assert stage.buffered_bytes == 0


class TestMoveToApp:
    def test_delivers_via_scatter(self):
        space = ApplicationAddressSpace()
        space.add_region("dst", 10)
        stage = MoveToAppStage(space)
        stage.set_destination(ScatterMap.linear("dst", 2, 5))
        assert stage.apply(b"hello") == b"hello"
        assert space.read_region("dst")[2:7] == b"hello"

    def test_requires_destination(self):
        space = ApplicationAddressSpace()
        stage = MoveToAppStage(space)
        with pytest.raises(StageError, match="no scatter map"):
            stage.apply(b"data")

    def test_requires_complete_verified_adu(self):
        from repro.stages.base import Facts

        stage = MoveToAppStage(ApplicationAddressSpace())
        assert Facts.ADU_COMPLETE in stage.requires
        assert Facts.VERIFIED in stage.requires

    def test_scatter_complexity_metric(self):
        space = ApplicationAddressSpace()
        space.add_region("a", 4)
        space.add_region("b", 4)
        stage = MoveToAppStage(space)
        assert stage.scatter_complexity == 0
        scatter = ScatterMap()
        scatter.add(0, "a", 0, 4)
        scatter.add(4, "b", 0, 4)
        stage.set_destination(scatter)
        assert stage.scatter_complexity == 2

    def test_reset_clears_destination(self):
        space = ApplicationAddressSpace()
        space.add_region("dst", 4)
        stage = MoveToAppStage(space)
        stage.set_destination(ScatterMap.linear("dst", 0, 4))
        stage.reset()
        with pytest.raises(StageError):
            stage.apply(b"data")


class TestRetransmitChainSnapshots:
    """Chains are saved by reference; the gather is paid only on the
    first actual retransmission."""

    def _chain(self, data: bytes, cut: int):
        from repro.buffers.chain import BufferChain
        from repro.buffers.segment import Segment

        return BufferChain([Segment.wrap(data[:cut]), Segment.wrap(data[cut:])])

    def test_saving_a_chain_copies_nothing(self):
        from repro.machine.accounting import datapath_counters

        stage = BufferForRetransmitStage()
        chain = self._chain(b"abcdefgh", 3)
        counters = datapath_counters()
        counters.reset()
        out = stage.apply(chain)
        snap = counters.snapshot()
        assert out is chain
        assert snap["copies"] == 0
        assert snap["zero_copy_ops"] >= 1
        counters.reset()

    def test_retrieve_materializes_once(self):
        from repro.machine.accounting import datapath_counters

        stage = BufferForRetransmitStage()
        stage.apply(self._chain(b"abcdefgh", 5))
        counters = datapath_counters()
        counters.reset()
        assert stage.retrieve(0) == b"abcdefgh"
        first = counters.snapshot()["copies"]
        assert stage.retrieve(0) == b"abcdefgh"
        assert counters.snapshot()["copies"] == first  # second hit is free
        counters.reset()

    def test_pooled_snapshot_recycles_on_release(self):
        from repro.buffers.pool import BufferPool

        pool = BufferPool(n_buffers=2, buffer_size=64, label="rtx")
        stage = BufferForRetransmitStage(pool=pool)
        stage.apply(self._chain(b"payload-bytes", 4))
        assert stage.retrieve(0) == b"payload-bytes"
        assert pool.in_use == 1
        stage.release_through(0)
        assert pool.in_use == 0

    def test_release_without_retrieve_frees_the_reference(self):
        stage = BufferForRetransmitStage()
        chain = self._chain(b"xyzw", 2)
        stage.apply(chain)
        stage.release_through(0)
        assert stage.buffered_bytes == 0
