"""Buffer pools: finite capacity and correct recycling."""

import pytest

from repro.buffers.pool import BufferPool
from repro.errors import BufferError_


def test_construction_validates():
    with pytest.raises(BufferError_):
        BufferPool(0, 100)
    with pytest.raises(BufferError_):
        BufferPool(4, 0)


def test_allocate_release_cycle():
    pool = BufferPool(2, 64)
    a = pool.allocate()
    assert pool.available == 1
    assert pool.in_use == 1
    pool.release(a)
    assert pool.available == 2


def test_exhaustion_raises():
    pool = BufferPool(1, 64)
    pool.allocate()
    with pytest.raises(BufferError_, match="exhausted"):
        pool.allocate()


def test_try_allocate_counts_failures():
    pool = BufferPool(1, 64)
    assert pool.try_allocate() is not None
    assert pool.try_allocate() is None
    assert pool.allocation_failures == 1


def test_double_release_rejected():
    pool = BufferPool(2, 64)
    buffer = pool.allocate()
    pool.release(buffer)
    with pytest.raises(BufferError_):
        pool.release(buffer)


def test_foreign_buffer_rejected():
    from repro.buffers.buffer import Buffer

    pool = BufferPool(1, 64)
    with pytest.raises(BufferError_):
        pool.release(Buffer(64))


def test_release_zeroes_contents():
    pool = BufferPool(1, 8)
    buffer = pool.allocate()
    buffer.write(0, b"secret!!")
    pool.release(buffer)
    again = pool.allocate()
    assert again.read(0, 8) == b"\x00" * 8


def test_buffers_have_declared_size():
    pool = BufferPool(3, 128)
    assert len(pool.allocate()) == 128
