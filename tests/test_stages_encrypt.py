"""Encryption stages: correctness and ordering semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import StageError
from repro.stages.base import Facts
from repro.stages.encrypt import (
    ChainedBlockCipher,
    DecryptStage,
    EncryptStage,
    XorStreamCipher,
)


class TestXorStream:
    def test_self_inverse(self):
        cipher = XorStreamCipher(key=7)
        data = b"secret message"
        assert cipher.process(cipher.process(data)) == data

    def test_actually_changes_data(self):
        cipher = XorStreamCipher(key=7)
        assert cipher.process(b"secret message") != b"secret message"

    def test_position_addressable(self):
        """Out-of-order units decrypt independently given their offsets —
        the ALF-compatible property."""
        cipher = XorStreamCipher(key=3)
        whole = cipher.process(b"abcdefgh", 0)
        part = cipher.process(b"efgh", 4)
        assert whole[4:] == part

    def test_different_keys_differ(self):
        data = b"same plaintext"
        assert XorStreamCipher(1).process(data) != XorStreamCipher(2).process(data)

    def test_negative_offset_rejected(self):
        with pytest.raises(StageError):
            XorStreamCipher(1).process(b"x", -1)

    def test_empty(self):
        assert XorStreamCipher(1).process(b"") == b""

    @given(st.binary(max_size=100), st.integers(min_value=0, max_value=1000))
    def test_roundtrip_any_offset(self, data, offset):
        cipher = XorStreamCipher(key=99)
        assert cipher.process(cipher.process(data, offset), offset) == data


class TestChainedBlock:
    def test_roundtrip(self):
        cipher = ChainedBlockCipher(key=0xDEADBEEF)
        data = b"0123456789abcdef"
        assert cipher.decrypt(cipher.encrypt(data)) == data

    def test_chaining_propagates(self):
        """Identical plaintext blocks yield different ciphertext blocks."""
        cipher = ChainedBlockCipher(key=5)
        encrypted = cipher.encrypt(b"AAAA" * 4)
        blocks = [encrypted[i : i + 4] for i in range(0, 16, 4)]
        assert len(set(blocks)) == 4

    def test_block_alignment_required(self):
        cipher = ChainedBlockCipher(key=5)
        with pytest.raises(StageError, match="multiple"):
            cipher.encrypt(b"abc")
        with pytest.raises(StageError, match="multiple"):
            cipher.decrypt(b"abc")

    def test_iv_matters(self):
        data = b"12345678"
        a = ChainedBlockCipher(key=5, iv=b"\x00" * 4).encrypt(data)
        b = ChainedBlockCipher(key=5, iv=b"\x01" * 4).encrypt(data)
        assert a != b

    def test_bad_iv(self):
        with pytest.raises(StageError):
            ChainedBlockCipher(key=1, iv=b"abc")

    def test_decrypt_out_of_order_fails(self):
        """Swapping ciphertext blocks corrupts decryption — the in-order
        constraint the DecryptStage declares."""
        cipher = ChainedBlockCipher(key=5)
        encrypted = cipher.encrypt(b"ABCDEFGHIJKL")
        swapped = encrypted[4:8] + encrypted[0:4] + encrypted[8:]
        assert cipher.decrypt(swapped) != b"EFGHABCDIJKL"

    @given(st.binary(max_size=25))
    def test_roundtrip_property(self, raw):
        data = raw + bytes(-len(raw) % 4)
        cipher = ChainedBlockCipher(key=0x1234)
        assert cipher.decrypt(cipher.encrypt(data)) == data


class TestStages:
    def test_stream_stage_roundtrip(self):
        enc = EncryptStage(XorStreamCipher(1))
        dec = DecryptStage(XorStreamCipher(1))
        assert dec.apply(enc.apply(b"payload")) == b"payload"

    def test_stream_stage_offsets(self):
        enc = EncryptStage(XorStreamCipher(1))
        dec = DecryptStage(XorStreamCipher(1))
        enc.set_stream_offset(100)
        dec.set_stream_offset(100)
        assert dec.apply(enc.apply(b"payload")) == b"payload"

    def test_chained_stage_roundtrip(self):
        enc = EncryptStage(ChainedBlockCipher(9))
        dec = DecryptStage(ChainedBlockCipher(9))
        assert dec.apply(enc.apply(b"12345678")) == b"12345678"

    def test_stream_decrypt_is_order_free(self):
        stage = DecryptStage(XorStreamCipher(1))
        assert Facts.TU_IN_ORDER not in stage.requires

    def test_chained_decrypt_requires_order(self):
        stage = DecryptStage(ChainedBlockCipher(1))
        assert Facts.TU_IN_ORDER in stage.requires

    def test_chained_costs_more_than_stream(self):
        stream = EncryptStage(XorStreamCipher(1))
        chained = EncryptStage(ChainedBlockCipher(1))
        assert chained.cost.alu_per_word > stream.cost.alu_per_word
