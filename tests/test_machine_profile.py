"""Machine profiles: the Table 1 calibration is exact and predictive."""

import pytest

from repro.errors import MachineModelError
from repro.machine.costs import CHECKSUM_COST, COPY_COST, CostVector
from repro.machine.profile import (
    MICROVAX_III,
    MIPS_R2000,
    SUPERSCALAR,
    MachineProfile,
    profile_by_name,
)


class TestCalibration:
    """The profiles must reproduce every number they were derived from."""

    def test_r2000_copy(self):
        assert MIPS_R2000.mbps_for_cost(COPY_COST) == pytest.approx(130.0)

    def test_r2000_checksum(self):
        assert MIPS_R2000.mbps_for_cost(CHECKSUM_COST) == pytest.approx(115.0)

    def test_r2000_integrated_copy_checksum(self):
        fused = CHECKSUM_COST.fuse_after(COPY_COST)
        assert MIPS_R2000.mbps_for_cost(fused) == pytest.approx(90.0)

    def test_uvax_copy(self):
        assert MICROVAX_III.mbps_for_cost(COPY_COST) == pytest.approx(42.0)

    def test_uvax_checksum(self):
        assert MICROVAX_III.mbps_for_cost(CHECKSUM_COST) == pytest.approx(60.0)

    def test_uvax_write_costlier_than_read(self):
        """The paper's oddity: checksum beats copy on the CVAX because
        its store is expensive."""
        assert MICROVAX_III.write_cycles > MICROVAX_III.read_cycles

    def test_r2000_consistency(self):
        """copy + checksum - integrated = R must be positive and sane."""
        assert 0 < MIPS_R2000.read_cycles < 10
        assert 0 < MIPS_R2000.write_cycles < 10
        assert 0 < MIPS_R2000.alu_cycles < 5

    def test_superscalar_cheap_alu(self):
        assert SUPERSCALAR.alu_cycles < MIPS_R2000.alu_cycles


class TestCycles:
    def test_cycles_per_word(self):
        assert MIPS_R2000.cycles_per_word(COPY_COST) == pytest.approx(
            MIPS_R2000.read_cycles + MIPS_R2000.write_cycles
        )

    def test_cycles_scale_with_bytes(self):
        one = MIPS_R2000.cycles(COPY_COST, 4000)
        two = MIPS_R2000.cycles(COPY_COST, 8000)
        assert two == pytest.approx(2 * one)

    def test_per_call_ops_charged_per_invocation(self):
        cost = CostVector(reads_per_word=1.0, per_call_ops=100.0)
        once = MIPS_R2000.cycles(cost, 4000, invocations=1)
        thrice = MIPS_R2000.cycles(cost, 4000, invocations=3)
        assert thrice - once == pytest.approx(
            200.0 * MIPS_R2000.alu_cycles
        )

    def test_negative_bytes_rejected(self):
        with pytest.raises(MachineModelError):
            MIPS_R2000.cycles(COPY_COST, -1)

    def test_free_cost_has_no_throughput(self):
        with pytest.raises(MachineModelError):
            MIPS_R2000.mbps_for_cost(CostVector())

    def test_instruction_cycles(self):
        assert MIPS_R2000.instruction_cycles(100) == pytest.approx(120.0)

    def test_instruction_cycles_rejects_negative(self):
        with pytest.raises(MachineModelError):
            MIPS_R2000.instruction_cycles(-1)


class TestRegistry:
    def test_lookup(self):
        assert profile_by_name("r2000") is MIPS_R2000
        assert profile_by_name("UVAX3") is MICROVAX_III
        assert profile_by_name("superscalar") is SUPERSCALAR

    def test_unknown_name(self):
        with pytest.raises(MachineModelError, match="unknown machine"):
            profile_by_name("cray")


class TestValidation:
    def test_bad_clock(self):
        with pytest.raises(MachineModelError):
            MachineProfile("x", 0, 1, 1, 1, 1, 1)

    def test_negative_cost(self):
        with pytest.raises(MachineModelError):
            MachineProfile("x", 1e6, -1, 1, 1, 1, 1)
