"""End-to-end zero-copy datapath: acceptance criteria and equivalences.

The PR's headline claim, measured rather than asserted: a steady-state
ALF receive of 64 KB ADUs in 8 fragments does at least 2x fewer
byte-copies on the scatter-gather chain path than on the layered path,
with byte-identical delivered ADUs.
"""

from __future__ import annotations

import random

import pytest

from repro.buffers import BufferChain, BufferPool
from repro.core.adu import Adu, fragment_adu, reassemble_fragments
from repro.ilp.kernels import (
    as_native_words,
    bytes_to_words,
    checksum_chain,
    gather_words,
)
from repro.machine.accounting import datapath_counters
from repro.net.host import Host
from repro.net.link import Link
from repro.sim.eventloop import EventLoop
from repro.stages.checksum import internet_checksum
from repro.transport.alf import AlfReceiver, AlfSender


@pytest.fixture(autouse=True)
def _clean_counters():
    datapath_counters().reset()
    yield
    datapath_counters().reset()


def run_transfer(payloads, zero_copy, rx_pool=None, loss=0.0, duplicate=0.0):
    loop = EventLoop()
    a = Host(loop, "a")
    b = Host(loop, "b", rx_pool=rx_pool)
    link_ab = Link(loop, random.Random(3), loss_rate=loss, duplicate_rate=duplicate)
    link_ba = Link(loop, random.Random(4))
    a.add_link("b", link_ab)
    b.add_link("a", link_ba)
    link_ab.connect(b.receive)
    link_ba.connect(a.receive)
    delivered = {}
    chains_seen = []
    AlfReceiver(
        loop, b, "a", 1,
        deliver=lambda d: (
            delivered.__setitem__(d.sequence, d.payload),
            chains_seen.append(d.chain),
        ),
        zero_copy=zero_copy,
    )
    sender = AlfSender(loop, a, "b", 1, mtu=8192, zero_copy=zero_copy)
    for i, payload in enumerate(payloads):
        sender.send_adu(Adu(sequence=i, payload=payload, name={"i": i}))
    loop.run(until=60.0)
    return delivered, chains_seen


class TestAcceptance:
    def test_64k_adu_8_fragments_at_least_2x_fewer_copies(self):
        rng = random.Random(11)
        payloads = [rng.randbytes(64 * 1024) for _ in range(4)]
        counters = datapath_counters()

        counters.reset()
        layered, _ = run_transfer(payloads, zero_copy=False)
        layered_snap = counters.snapshot()

        counters.reset()
        chained, chains = run_transfer(payloads, zero_copy=True)
        chain_snap = counters.snapshot()

        # Byte-identical delivery on both paths.
        assert [layered[i] for i in range(4)] == payloads
        assert [chained[i] for i in range(4)] == payloads
        # The delivery callback saw the backing chain as a loan.
        assert all(isinstance(c, BufferChain) for c in chains)

        assert layered_snap["copies"] >= 2 * chain_snap["copies"]
        assert layered_snap["bytes_copied"] >= 2 * chain_snap["bytes_copied"]
        # The chain path's only materialization is the delivery linearize.
        assert set(chain_snap["copies_by_label"]) == {"linearize"}

    def test_rx_pool_dma_path_recycles_under_loss_and_duplication(self):
        pool = BufferPool(128, 8192, label="rx")
        rng = random.Random(12)
        payloads = [rng.randbytes(64 * 1024) for _ in range(4)]
        delivered, _ = run_transfer(
            payloads, zero_copy=False, rx_pool=pool, loss=0.08, duplicate=0.08
        )
        assert [delivered[i] for i in range(4)] == payloads
        snap = pool.snapshot()
        assert snap["in_use"] == 0
        assert snap["hits"] == snap["recycled"] > 0
        assert pool.leak_report() == []


class TestKernelEquivalences:
    def test_checksum_chain_matches_linear_checksum(self):
        rng = random.Random(13)
        for trial in range(20):
            data = rng.randbytes(rng.randrange(1, 4000))
            chain = BufferChain.wrap(data)
            pieces = list(chain.chunks(rng.randrange(1, 700)))
            rebuilt = BufferChain()
            for piece in pieces:
                rebuilt.extend(piece)
            assert checksum_chain(rebuilt) == internet_checksum(data)

    def test_gather_words_matches_bytes_to_words(self):
        rng = random.Random(14)
        data = rng.randbytes(1000)
        chain = BufferChain.wrap(data)
        rebuilt = BufferChain()
        for piece in chain.chunks(333):
            rebuilt.extend(piece)
        gathered, glen = gather_words(rebuilt)
        packed, plen = bytes_to_words(data)
        assert glen == plen
        assert (gathered == packed).all()


class TestNoCopyWordPacking:
    def test_as_native_words_aliases_input(self):
        data = bytearray(range(64))
        words = as_native_words(data)
        assert words.base.obj is data  # the view shares storage
        data[0] = 0xFF
        assert words[0] != as_native_words(bytes(64))[0]

    def test_bytes_to_words_accepts_memoryview_without_bytes_roundtrip(self):
        data = bytearray(range(64))
        mv = memoryview(data)
        from_mv, _ = bytes_to_words(mv)
        from_bytes, _ = bytes_to_words(bytes(data))
        assert (from_mv == from_bytes).all()

    def test_bytes_to_words_memoryview_slice_of_larger_buffer(self):
        backing = bytearray(range(100))
        words, length = bytes_to_words(memoryview(backing)[4:68])
        reference, _ = bytes_to_words(bytes(backing[4:68]))
        assert length == 64
        assert (words == reference).all()


class TestFragmentChains:
    def test_zero_copy_fragmentation_references_the_adu(self):
        payload = bytes(range(256)) * 64  # 16 KB
        adu = Adu(sequence=0, payload=payload, name={})
        counters = datapath_counters()
        counters.reset()
        fragments = fragment_adu(adu, 4096, checksum=0, zero_copy=True)
        assert counters.snapshot()["copies"] == 0
        assert all(isinstance(f.payload, BufferChain) for f in fragments)
        assert b"".join(f.payload.tobytes() for f in fragments) == payload

    def test_reassemble_as_chain_is_structural(self):
        payload = bytes(range(256)) * 16
        adu = Adu(sequence=0, payload=payload, name={})
        fragments = fragment_adu(adu, 1024, checksum=None, zero_copy=True)
        counters = datapath_counters()
        counters.reset()
        rebuilt = reassemble_fragments(fragments, verify=False, as_chain=True)
        assert counters.snapshot()["copies"] == 0
        assert isinstance(rebuilt.payload, BufferChain)
        assert rebuilt.payload.tobytes() == payload
