"""Pipelines: composition and control-fact checking."""

import pytest

from repro.errors import PipelineError, StageError
from repro.ilp.pipeline import Pipeline
from repro.stages.base import Facts, PassthroughStage
from repro.stages.checksum import ChecksumVerifyStage
from repro.stages.copy import CopyStage
from repro.stages.netio import NetworkExtractStage


def test_empty_pipeline_rejected():
    with pytest.raises(PipelineError):
        Pipeline([])


def test_apply_runs_in_order():
    log = []

    class Tag(PassthroughStage):
        def __init__(self, tag):
            super().__init__(name=tag)
            self.tag = tag

        def apply(self, data):
            log.append(self.tag)
            return data

    Pipeline([Tag("a"), Tag("b"), Tag("c")]).apply(b"x")
    assert log == ["a", "b", "c"]


def test_stage_names():
    pipeline = Pipeline([CopyStage(name="one"), CopyStage(name="two")])
    assert pipeline.stage_names() == ["one", "two"]
    assert len(pipeline) == 2


def test_fact_ordering_enforced():
    """A stage requiring VERIFIED before anything provides it is
    ill-formed."""
    needs_verified = PassthroughStage("needs")
    needs_verified.requires = frozenset({Facts.VERIFIED})
    with pytest.raises(StageError, match="requires"):
        Pipeline([CopyStage(), needs_verified])


def test_fact_provided_upstream_is_ok():
    needs_verified = PassthroughStage("needs")
    needs_verified.requires = frozenset({Facts.VERIFIED})
    verify = ChecksumVerifyStage()
    verify.requires = frozenset()  # relax EXTRACTED for this test
    Pipeline([verify, needs_verified])  # no raise


def test_initial_facts_satisfy():
    needs = PassthroughStage("needs")
    needs.requires = frozenset({Facts.DEMUXED})
    Pipeline([needs], initial_facts={Facts.DEMUXED})  # no raise


def test_extract_provides_for_verify():
    verify = ChecksumVerifyStage()
    Pipeline([NetworkExtractStage(), verify])  # EXTRACTED flows


def test_reset_propagates():
    verify = ChecksumVerifyStage()
    verify.requires = frozenset()
    verify.expect(0)
    Pipeline([verify]).reset()
    assert verify.expected is None


def test_iteration():
    stages = [CopyStage(name="a"), CopyStage(name="b")]
    assert list(Pipeline(stages)) == stages
