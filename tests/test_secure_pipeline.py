"""The full §6 single-pass secure pipeline.

Covers the fused encryption fast path end to end: the streaming
``xor_chain`` kernel, checksum correctness over partial-word tails (the
fused loop's padding must not leak into the sum), compiled-vs-interpreted
equivalence, ciphertext on the wire, the receiver's batched drain with
per-row failure isolation, zero-copy retransmit serving, and the
handshake's schema-fingerprint / cipher negotiation.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.buffers.chain import BufferChain
from repro.buffers.segment import Segment
from repro.core.adu import Adu, fragment_adu
from repro.ilp.compiler import PipelineCompiler, PlanCache
from repro.ilp.kernels import xor_chain
from repro.ilp.pipeline import Pipeline
from repro.machine.accounting import datapath_counters
from repro.machine.profile import MIPS_R2000
from repro.net.packet import Packet
from repro.net.topology import two_hosts
from repro.presentation.abstract import ArrayOf, Int32
from repro.stages.checksum import ChecksumComputeStage, internet_checksum
from repro.stages.copy import BufferForRetransmitStage
from repro.stages.encrypt import WordXorStage, secure_counters
from repro.transport.alf import AlfReceiver, AlfSender, RecoveryMode
from repro.transport.alf.receiver import PROTOCOL
from repro.transport.alf.sender import wire_pipeline
from repro.transport.session import (
    SessionConfig,
    SessionInitiator,
    SessionListener,
    cipher_token,
)

KEY = 0xA5C3F00D


def compile_plan(stages, name="secure"):
    return PipelineCompiler(MIPS_R2000).compile(Pipeline(stages, name=name))


def chain_of(data: bytes, cuts) -> BufferChain:
    chain = BufferChain()
    prev = 0
    for cut in list(cuts) + [len(data)]:
        if cut > prev:
            chain.append(Segment.wrap(data[prev:cut]))
        prev = cut
    return chain


# ----------------------------------------------------------------------
# xor_chain: the streaming cipher kernel


@given(
    data=st.binary(max_size=2048),
    key=st.integers(min_value=0, max_value=0xFFFFFFFF),
    splits=st.lists(st.integers(min_value=0, max_value=2048), max_size=6),
)
@settings(max_examples=80, deadline=None)
def test_xor_chain_matches_interpreted(data, key, splits):
    cuts = sorted(c for c in splits if c < len(data))
    chain = chain_of(data, cuts)
    out = xor_chain(chain, key)
    assert out.linearize() == WordXorStage(key).apply(data)
    back = xor_chain(out, key)
    assert back.linearize() == data  # self-inverse
    chain.release()
    out.release()
    back.release()


def test_xor_chain_is_segment_geometry_independent():
    data = bytes(random.Random(3).randbytes(1001))
    flat = xor_chain(chain_of(data, []), KEY).linearize()
    for cuts in ([1], [500], [1, 2, 3], [7, 100, 505, 999]):
        assert xor_chain(chain_of(data, cuts), KEY).linearize() == flat


# ----------------------------------------------------------------------
# Checksum over partial-word tails: the fused loop pads the final word,
# the cipher transform writes into that padding, and the checksum must
# still cover exactly the true bytes.


@given(
    data=st.binary(min_size=1, max_size=512),
    key=st.integers(min_value=1, max_value=0xFFFFFFFF),
)
@settings(max_examples=80, deadline=None)
def test_fused_checksum_covers_exactly_the_wire_bytes(data, key):
    plan = compile_plan(
        [WordXorStage(key, name="encrypt"), ChecksumComputeStage()]
    )
    out, observations = plan.run(data)
    ciphertext = WordXorStage(key).apply(data)
    assert out == ciphertext
    assert observations["checksum-internet"] == internet_checksum(ciphertext)


@pytest.mark.parametrize("length", [1, 2, 3, 4, 5, 1001, 1002, 1003, 4096])
def test_sender_receiver_plans_agree_on_unaligned_tails(length):
    data = bytes(random.Random(length).randbytes(length))
    sender = compile_plan(
        [WordXorStage(KEY, name="encrypt"), ChecksumComputeStage()]
    )
    receiver = compile_plan(
        [ChecksumComputeStage(), WordXorStage(KEY, name="decrypt")]
    )
    wire, sent = sender.run(data)
    back, received = receiver.run(wire)
    assert back == data
    assert sent["checksum-internet"] == received["checksum-internet"]


def test_batch_finalize_masks_partial_words_per_row():
    plan = compile_plan(
        [WordXorStage(KEY, name="encrypt"), ChecksumComputeStage()]
    )
    rows = [bytes(random.Random(i).randbytes(97 + i)) for i in range(9)]
    batch = plan.run_batch(rows)
    for row, output, checksum in zip(
        rows, batch.outputs, batch.observations["checksum-internet"]
    ):
        assert output == WordXorStage(KEY).apply(row)
        assert checksum == internet_checksum(output)


# ----------------------------------------------------------------------
# Fusion shape and streaming execution


def test_secure_wire_pipeline_compiles_to_one_group_each_direction():
    plan_cache = PlanCache(capacity=8)
    sender = plan_cache.get_or_compile(
        wire_pipeline(encrypt=WordXorStage(KEY, name="encrypt")), MIPS_R2000
    )
    receiver = plan_cache.get_or_compile(
        wire_pipeline(
            convert_after=True, encrypt=WordXorStage(KEY, name="decrypt")
        ),
        MIPS_R2000,
    )
    assert len(sender.groups) == 1
    assert len(receiver.groups) == 1


def test_run_chain_streams_encryption_without_gathering():
    plan = compile_plan(
        [WordXorStage(KEY, name="encrypt"), ChecksumComputeStage()]
    )
    data = bytes(random.Random(9).randbytes(3000))
    chain = chain_of(data, [700, 1900])
    counters = datapath_counters()
    counters.reset()
    before = secure_counters().snapshot()
    out, observations = plan.run_chain(chain)
    after = secure_counters().snapshot()
    snap = counters.snapshot()
    counters.reset()
    ciphertext = WordXorStage(KEY).apply(data)
    assert out.linearize() == ciphertext
    assert observations["checksum-internet"] == internet_checksum(ciphertext)
    # The cipher streamed segment-by-segment: no word gather happened.
    assert snap["copies_by_label"].get("gather-words", 0) == 0
    assert after["chain_passes"] == before["chain_passes"] + 1
    out.release()


# ----------------------------------------------------------------------
# End-to-end encrypted transport


def run_transfer(zero_copy, batch_drain, n_adus=12, loss_rate=0.0, seed=7):
    path = two_hosts(seed=seed, loss_rate=loss_rate, bandwidth_bps=1e9)
    rng = random.Random(seed)
    payloads = [rng.randbytes(4000 + i) for i in range(n_adus)]
    wire_snapshots = []
    forward = path.b.receive

    def sniff(packet):
        if packet.payload:
            payload = packet.payload
            wire_snapshots.append(
                payload.tobytes()
                if isinstance(payload, BufferChain)
                else bytes(payload)
            )
        forward(packet)

    path.a_to_b.connect(sniff)
    delivered = {}
    receiver = AlfReceiver(
        path.loop, path.b, "a", 1,
        deliver=lambda d: delivered.__setitem__(d.sequence, d.payload),
        zero_copy=zero_copy, encryption=KEY, batch_drain=batch_drain,
    )
    sender = AlfSender(
        path.loop, path.a, "b", 1, mtu=1500,
        zero_copy=zero_copy, encryption=KEY,
    )
    for i, payload in enumerate(payloads):
        sender.send_adu(Adu(sequence=i, payload=payload, name={"i": i}))
    path.loop.run(until=120.0)
    return payloads, delivered, wire_snapshots, receiver


@pytest.mark.parametrize("zero_copy", [False, True])
@pytest.mark.parametrize("batch_drain", [False, True])
def test_encrypted_transfer_delivers_plaintext(zero_copy, batch_drain):
    payloads, delivered, wire, receiver = run_transfer(zero_copy, batch_drain)
    assert {i: p for i, p in enumerate(payloads)} == delivered
    if batch_drain:
        assert receiver.batch_drains >= 1
        assert receiver.batch_drained_adus == len(payloads)


@pytest.mark.parametrize("zero_copy", [False, True])
def test_wire_carries_ciphertext_not_plaintext(zero_copy):
    payloads, delivered, wire, _ = run_transfer(zero_copy, batch_drain=False)
    joined = b"".join(wire)
    ciphertext = WordXorStage(KEY).apply(payloads[0])
    assert payloads[0][:512] not in joined
    assert ciphertext[:512] in joined


def test_encrypted_transfer_survives_loss_with_retransmission():
    payloads, delivered, _, _ = run_transfer(
        zero_copy=True, batch_drain=True, loss_rate=0.08, seed=13
    )
    assert {i: p for i, p in enumerate(payloads)} == delivered


def test_encryption_composes_with_fec():
    path = two_hosts(seed=11, loss_rate=0.06, bandwidth_bps=50e6)
    n_adus = 30
    rng = random.Random(4)
    payloads = [rng.randbytes(2234) for _ in range(n_adus)]
    got = {}
    receiver = AlfReceiver(
        path.loop, path.b, "a", 1,
        deliver=lambda d: got.setdefault(d.sequence, d.payload),
        expected_adus=n_adus, ack_interval=0.0, encryption=KEY,
    )
    sender = AlfSender(
        path.loop, path.a, "b", 1, mtu=500,
        recovery=RecoveryMode.NO_RETRANSMIT, fec_group=4, encryption=KEY,
    )
    for i, payload in enumerate(payloads):
        sender.send_adu(Adu(i, payload, {"i": i}))
    sender.close()
    path.loop.run(until=120)
    assert got, "nothing delivered"
    assert all(got[seq] == payloads[seq] for seq in got)
    assert receiver.fec_recoveries > 0


# ----------------------------------------------------------------------
# Batched drain: partial-failure isolation


def make_fragments(payloads, mtu=1024):
    cipher = WordXorStage(KEY)
    packets = []
    for sequence, payload in enumerate(payloads):
        ciphertext = cipher.apply(payload)
        adu = Adu(sequence=sequence, payload=ciphertext, name={"i": sequence})
        checksum = internet_checksum(ciphertext)
        for fragment in fragment_adu(adu, mtu, checksum=checksum):
            packets.append(
                Packet(
                    src="a", dst="b", protocol=PROTOCOL, flow_id=1,
                    header=AlfSender._fragment_header(fragment),
                    payload=fragment.payload,
                )
            )
    return packets


def test_run_batch_isolates_corrupt_adus():
    path = two_hosts(seed=5)
    delivered = {}
    receiver = AlfReceiver(
        path.loop, path.b, "a", 1,
        deliver=lambda d: delivered.__setitem__(d.sequence, d.payload),
        zero_copy=False, encryption=KEY, batch_drain=True,
    )
    rng = random.Random(21)
    payloads = [rng.randbytes(3000 + i) for i in range(8)]
    packets = make_fragments(payloads)
    # Corrupt one fragment of ADU 3: its checksum row must fail without
    # taking down the rest of the batch.
    for packet in packets:
        if packet.header["adu_seq"] == 3 and packet.header["frag"] == 0:
            flipped = bytearray(packet.payload)
            flipped[10] ^= 0xFF
            packet.payload = bytes(flipped)
            break
    for packet in packets:
        receiver._on_fragment(packet)
    drained = receiver.run_batch()
    assert drained == 7
    assert receiver.stats.checksum_failures == 1
    assert 3 not in delivered
    assert {i: payloads[i] for i in delivered} == delivered
    assert len(delivered) == 7


def test_run_batch_empty_queue_is_noop():
    path = two_hosts(seed=5)
    receiver = AlfReceiver(
        path.loop, path.b, "a", 1, deliver=lambda d: None,
        encryption=KEY, batch_drain=True,
    )
    assert receiver.run_batch() == 0
    assert receiver.batch_drains == 0


# ----------------------------------------------------------------------
# Zero-copy retransmit serving


def test_retrieve_chain_serves_snapshot_without_copy():
    stage = BufferForRetransmitStage()
    data = bytes(random.Random(2).randbytes(600))
    stage.apply(data)
    chain_unit = chain_of(bytes(random.Random(3).randbytes(900)), [300])
    stage.apply(chain_unit)

    first = stage.retrieve_chain(0)
    assert first.linearize() == data
    assert stage.zero_copy_retrievals == 1
    first.release()
    # The stored unit survives the caller's release.
    again = stage.retrieve_chain(0)
    assert again.linearize() == data
    assert stage.zero_copy_retrievals == 2
    again.release()

    second = stage.retrieve_chain(1)
    assert second.linearize() == chain_unit.linearize()
    second.release()
    stage.reset()


def test_retrieve_chain_from_pool_shares_pooled_segment():
    from repro.buffers.pool import BufferPool

    pool = BufferPool(n_buffers=4, buffer_size=4096, label="rtx")
    stage = BufferForRetransmitStage(pool=pool)
    data = bytes(random.Random(8).randbytes(2000))
    chain = chain_of(data, [512, 1024])
    stage.apply(chain.share())
    chain.release()
    counters = datapath_counters()
    counters.reset()
    served = stage.retrieve_chain(0)
    repeat = stage.retrieve_chain(0)
    snap = counters.snapshot()
    counters.reset()
    assert served.linearize() == data
    assert repeat.linearize() == data
    # One deferred gather into the pooled segment; the repeat moved no
    # bytes (both retrievals recorded as zero-copy ops).
    assert snap["bytes_copied"] == len(data)
    assert snap["zero_copy_ops"] >= 2
    served.release()
    repeat.release()
    stage.reset()


def test_retrieve_chain_bounds_check():
    from repro.errors import StageError

    stage = BufferForRetransmitStage()
    with pytest.raises(StageError):
        stage.retrieve_chain(0)


# ----------------------------------------------------------------------
# Session negotiation: schema fingerprint + cipher id


SCHEMAS = {"ints": ArrayOf(Int32())}


def test_session_with_matching_cipher_delivers():
    path = two_hosts(seed=1)
    delivered = []
    SessionListener(
        path.loop, path.b, SCHEMAS,
        deliver=lambda fid, adu: delivered.append(adu),
        encryption=KEY, batch_drain=True,
    )
    initiator = SessionInitiator(
        path.loop, path.a, "b", SessionConfig(schema_name="ints"),
        SCHEMAS, encryption=KEY,
    )
    path.loop.run(until=5)
    assert initiator.established
    initiator.session.sender.send_adu(
        Adu(0, b"\x01\x02\x03\x04\x05\x06\x07\x08", {"n": 0})
    )
    path.loop.run(until=10)
    assert len(delivered) == 1
    assert delivered[0].payload == b"\x01\x02\x03\x04\x05\x06\x07\x08"


def test_session_rejects_cipher_mismatch_with_clear_reason():
    path = two_hosts(seed=2)
    listener = SessionListener(path.loop, path.b, SCHEMAS, encryption=KEY)
    failures = []
    initiator = SessionInitiator(
        path.loop, path.a, "b", SessionConfig(schema_name="ints"),
        SCHEMAS, encryption=None, on_failed=lambda r: failures.append(r),
    )
    path.loop.run(until=10)
    assert not initiator.established
    assert listener.rejected >= 1
    assert failures and "cipher mismatch" in failures[0]
    assert "cleartext" in failures[0]


def test_session_rejects_schema_fingerprint_mismatch():
    path = two_hosts(seed=3)
    # Same schema *name*, different shape: the fingerprints disagree.
    listener = SessionListener(
        path.loop, path.b, {"ints": ArrayOf(Int32(), fixed_count=8)}
    )
    failures = []
    initiator = SessionInitiator(
        path.loop, path.a, "b", SessionConfig(schema_name="ints"),
        SCHEMAS, on_failed=lambda r: failures.append(r),
    )
    path.loop.run(until=10)
    assert not initiator.established
    assert listener.rejected >= 1
    assert failures and "schema fingerprint mismatch" in failures[0]


def test_cipher_token_never_exposes_the_key():
    token = cipher_token(KEY)
    assert token is not None and token.startswith("word-xor/")
    assert f"{KEY:x}" not in token
    assert str(KEY) not in token
    assert cipher_token(None) is None
    assert cipher_token(WordXorStage(KEY)) == token
    # Distinct keys get distinct tokens (fingerprint, not constant).
    assert cipher_token(KEY + 1) != token
