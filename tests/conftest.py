"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.bench.workloads import file_payload, integer_array, octet_payload


@pytest.fixture
def payload_4k() -> bytes:
    """The paper's canonical 4000-byte packet payload."""
    return octet_payload(4000, seed=1)


@pytest.fixture
def small_file() -> bytes:
    """A small deterministic file for transfer tests."""
    return file_payload(50_000, seed=2)


@pytest.fixture
def int_array() -> list[int]:
    """A deterministic 32-bit integer array workload."""
    return integer_array(250, seed=3)
