"""Unit-conversion helpers."""

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_bytes_to_words_rounds_up():
    assert units.bytes_to_words(0) == 0
    assert units.bytes_to_words(1) == 1
    assert units.bytes_to_words(4) == 1
    assert units.bytes_to_words(5) == 2
    assert units.bytes_to_words(4000) == 1000


def test_words_to_bytes():
    assert units.words_to_bytes(1000) == 4000


@given(st.integers(min_value=0, max_value=10**9))
def test_word_conversion_covers(n_bytes):
    words = units.bytes_to_words(n_bytes)
    assert units.words_to_bytes(words) >= n_bytes
    assert units.words_to_bytes(words) - n_bytes < units.WORD_BYTES


def test_mbps():
    assert units.mbps(8_000_000, 1.0) == pytest.approx(8.0)


def test_mbps_rejects_nonpositive_time():
    with pytest.raises(ValueError):
        units.mbps(100, 0)


def test_bits_of_bytes():
    assert units.bits_of_bytes(4000) == 32_000


def test_seconds_for_cycles():
    assert units.seconds_for_cycles(1e6, 1e6) == pytest.approx(1.0)


def test_seconds_for_cycles_rejects_bad_clock():
    with pytest.raises(ValueError):
        units.seconds_for_cycles(10, 0)


def test_fmt_mbps():
    assert units.fmt_mbps(129.96) == "130.0 Mb/s"


def test_fmt_bytes_scales():
    assert units.fmt_bytes(512) == "512 B"
    assert "KB" in units.fmt_bytes(2048)
    assert "MB" in units.fmt_bytes(3_000_000)
    assert "GB" in units.fmt_bytes(2_500_000_000)
