"""Presentation negotiation: the three strategies and their properties."""

import pytest

from repro.errors import NegotiationError
from repro.presentation.abstract import ArrayOf, Int32, Utf8String
from repro.presentation.ber import BerCodec
from repro.presentation.lwts import LwtsCodec
from repro.presentation.negotiate import (
    NATIVE_BIG,
    NATIVE_LITTLE,
    LocalSyntax,
    negotiate,
)

FIXED = ArrayOf(Int32(), fixed_count=16)
VARIABLE = ArrayOf(Utf8String())


def test_identity_when_compatible():
    plan = negotiate(NATIVE_BIG, NATIVE_BIG, FIXED)
    assert plan.strategy == "identity"
    assert plan.placement_computable
    assert plan.sender_pass.alu_per_word == 0.0  # a plain move


def test_sender_converts_when_orders_differ():
    plan = negotiate(NATIVE_BIG, NATIVE_LITTLE, VARIABLE)
    assert plan.strategy == "sender-converts"
    assert isinstance(plan.codec, LwtsCodec)
    assert plan.codec.byte_order == "little"  # the *receiver's* format
    assert plan.placement_computable  # always, by construction


def test_sender_converts_targets_receiver():
    plan = negotiate(NATIVE_LITTLE, NATIVE_BIG, VARIABLE)
    assert plan.codec.byte_order == "big"


def test_receiver_side_is_cheap_under_direct_conversion():
    plan = negotiate(NATIVE_BIG, NATIVE_LITTLE, VARIABLE)
    assert plan.receiver_pass.alu_per_word == 0.0


def test_canonical_fallback():
    plan = negotiate(NATIVE_BIG, NATIVE_LITTLE, VARIABLE, allow_direct=False)
    assert plan.strategy == "canonical"
    assert isinstance(plan.codec, BerCodec)
    assert not plan.placement_computable  # variable sizes


def test_canonical_with_fixed_sizes_can_place():
    plan = negotiate(NATIVE_BIG, NATIVE_LITTLE, FIXED, allow_direct=False)
    assert plan.strategy == "canonical"
    assert plan.placement_computable


def test_canonical_xdr():
    plan = negotiate(
        NATIVE_BIG, NATIVE_LITTLE, FIXED, allow_direct=False, canonical="xdr"
    )
    assert plan.codec.name == "xdr"


def test_unknown_canonical():
    with pytest.raises(NegotiationError):
        negotiate(
            NATIVE_BIG, NATIVE_LITTLE, FIXED, allow_direct=False,
            canonical="asn2",
        )


def test_canonical_costs_both_sides():
    plan = negotiate(NATIVE_BIG, NATIVE_LITTLE, FIXED, allow_direct=False)
    assert plan.sender_pass.alu_per_word > 0
    assert plan.receiver_pass.alu_per_word > 0


def test_describe_mentions_placement():
    plan = negotiate(NATIVE_BIG, NATIVE_LITTLE, VARIABLE, allow_direct=False)
    assert "buffer@receiver" in plan.describe()
    plan2 = negotiate(NATIVE_BIG, NATIVE_LITTLE, VARIABLE)
    assert "placement@sender" in plan2.describe()


def test_local_syntax_compatibility():
    vax = LocalSyntax("vax", "little")
    sun = LocalSyntax("sun", "big")
    assert vax.compatible_with(NATIVE_LITTLE)
    assert not vax.compatible_with(sun)


def test_negotiated_codec_roundtrips():
    """The chosen codec must actually carry the data."""
    plan = negotiate(NATIVE_BIG, NATIVE_LITTLE, VARIABLE)
    value = ["a", "bc", ""]
    assert plan.codec.roundtrip(value, VARIABLE) == value
