"""Property tests for corrupt-tolerant delivery (the ALF "ignore" mode).

Two invariants, checked end-to-end across randomized payloads, damage
positions and policies:

* **Uncovered damage is survivable.**  With a tolerant policy and every
  packet's uncovered region damaged in flight, every ADU still arrives,
  carries ``corrupt_spans`` naming the damaged ranges, and is
  byte-identical to the original *outside* those ranges — with zero
  checksum failures and zero repair traffic.
* **Covered damage is always fatal.**  Damage inside the covered region
  is never delivered: the coverage checksum catches every single-bit
  flip there, no matter the policy or payload.

Both hold on the serial two-host path (real Link corruption with the
``corrupt_span``-pinned PHY hint) and through a *threaded* sharded host
(hand-damaged packets with explicit ``phy_corrupt`` hints riding the
shared drain engine).
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.adu import Adu
from repro.ilp.compiler import PlanCache
from repro.integrity import IntegrityPolicy
from repro.machine.profile import MIPS_R2000
from repro.net.host import Host
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.shard import ShardedHost
from repro.net.topology import two_hosts
from repro.sim.eventloop import EventLoop
from repro.sim.rng import RngStreams
from repro.transport.alf import AlfReceiver, AlfSender
from repro.transport.alf.sender import WIRE_CHECKSUM, wire_pipeline

HEADER_BYTES = 64
PAYLOAD_MAX = 1024

_PLANS = PlanCache(capacity=64)


def tolerant_policy() -> IntegrityPolicy:
    return IntegrityPolicy.headers_only(HEADER_BYTES)


def payload_of(length: int, seed: int) -> bytes:
    return bytes(((seed * 41 + k * 7) & 0xFF) for k in range(length))


# --- serial path: real Link corruption ---------------------------------

def run_serial(
    policy: IntegrityPolicy,
    payloads: list[bytes],
    corrupt_span: tuple[int, int],
    seed: int,
):
    path = two_hosts(
        seed=seed,
        bandwidth_bps=1e9,
        corrupt_rate=1.0,
        corrupt_span=corrupt_span,
    )
    delivered: list = []
    receiver = AlfReceiver(
        path.loop,
        path.b,
        "a",
        1,
        delivered.append,
        ack_interval=0.01,
        expected_adus=len(payloads),
        integrity=policy,
    )
    sender = AlfSender(
        path.loop, path.a, "b", 1, mtu=PAYLOAD_MAX, integrity=policy
    )
    for i, payload in enumerate(payloads):
        sender.send_adu(Adu(i, payload, {"i": i}))
    path.loop.run(until=5.0)
    return delivered, receiver, sender


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=HEADER_BYTES + 2, max_value=PAYLOAD_MAX),
            st.integers(min_value=0, max_value=255),
        ),
        min_size=1,
        max_size=4,
    ),
    st.integers(min_value=HEADER_BYTES, max_value=PAYLOAD_MAX - 2),
    st.integers(min_value=0, max_value=2**16),
)
def test_serial_uncovered_damage_delivers_flagged(specs, span_lo, seed):
    # Every packet is corrupted (rate 1.0) somewhere past the covered
    # header prefix; every ADU must still arrive, flagged, and be
    # byte-identical outside the flagged ranges.
    policy = tolerant_policy()
    payloads = [payload_of(length, seed + i) for i, (length, _) in enumerate(specs)]
    shortest = min(len(p) for p in payloads)
    span = (min(span_lo, shortest - 1), shortest)
    delivered, receiver, sender = run_serial(policy, payloads, span, seed)
    assert len(delivered) == len(payloads)
    assert receiver.stats.checksum_failures == 0
    assert sender.stats.retransmissions == 0
    for adu in delivered:
        original = payloads[adu.sequence]
        assert adu.corrupt_spans, "corrupted delivery must be flagged"
        patched = bytearray(original)
        for lo, hi in adu.corrupt_spans:
            assert not policy.covers(lo, hi)
            patched[lo:hi] = adu.payload[lo:hi]
        assert bytes(patched) == adu.payload


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=HEADER_BYTES + 16, max_value=PAYLOAD_MAX),
    st.integers(min_value=0, max_value=HEADER_BYTES - 1),
    st.integers(min_value=0, max_value=2**16),
)
def test_serial_covered_damage_never_accepted(length, span_lo, seed):
    # Rate-1.0 damage pinned inside the covered prefix: every copy (and
    # every retransmission) is damaged, so nothing may ever deliver —
    # and every attempt must be counted as a checksum failure.
    policy = tolerant_policy()
    payloads = [payload_of(length, seed)]
    span = (span_lo, HEADER_BYTES)
    delivered, receiver, sender = run_serial(policy, payloads, span, seed)
    assert delivered == []
    assert receiver.stats.checksum_failures > 0
    assert sender.stats.retransmissions > 0


# --- threaded sharded path: explicit PHY hints -------------------------

def damaged_packet(
    plan, flow_id: int, payload: bytes, span: tuple[int, int]
) -> Packet:
    """A single-fragment data packet checksummed clean, then damaged in
    ``span`` with the matching PHY hint — what a corrupting link emits."""
    _, observations = plan.run(payload)
    mutated = bytearray(payload)
    for index in range(*span):
        mutated[index] ^= 0x80
    return Packet(
        src="a",
        dst="b",
        protocol="alf",
        flow_id=flow_id,
        header={
            "adu_seq": 0,
            "frag": 0,
            "nfrags": 1,
            "adu_len": len(payload),
            "adu_csum": observations[WIRE_CHECKSUM],
            "name": {"seq": 0},
            "phy_corrupt": span,
        },
        payload=bytes(mutated),
    )


def run_threaded(policy: IntegrityPolicy, packets: list[Packet], n_flows: int):
    front = Host(EventLoop(), "b")
    sharded = ShardedHost(
        front,
        2,
        rng=RngStreams(3),
        threaded=True,
        pool_buffers=n_flows * 2,
        buffer_size=PAYLOAD_MAX,
        max_rows=1024,
        protocols=(),
    )
    ack_rng = RngStreams(4)
    for shard in sharded.shards:
        sink = Host(shard.loop, "a")
        ack = Link(
            shard.loop,
            ack_rng.stream(f"ack-{shard.index}"),
            name=f"b->a/{shard.index}",
        )
        ack.connect(sink.receive)
        shard.host.add_link("a", ack)
    delivered: dict[int, list] = {}
    receivers = {}
    for flow_id in range(n_flows):
        shard = sharded.shard_for("alf", flow_id)
        receivers[flow_id] = AlfReceiver(
            shard.loop,
            shard.host,
            "a",
            flow_id,
            deliver=lambda d, fid=flow_id: delivered.setdefault(
                fid, []
            ).append(d),
            ack_interval=0,
            drain_engine=shard.engine,
            integrity=policy,
        )
    sharded.receive_burst(packets)
    sharded.drain()
    leaks = sharded.shutdown()
    assert all(report == [] for report in leaks.values()), leaks
    return delivered, receivers


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=HEADER_BYTES + 16, max_value=PAYLOAD_MAX),
    st.data(),
)
def test_threaded_sharded_uncovered_damage_delivers_flagged(
    n_flows, length, data
):
    policy = tolerant_policy()
    plan = _PLANS.get_or_compile(
        wire_pipeline(None, integrity=policy), MIPS_R2000
    )
    originals = {}
    packets = []
    for flow_id in range(n_flows):
        payload = payload_of(length, flow_id + 1)
        lo = data.draw(
            st.integers(min_value=HEADER_BYTES, max_value=length - 1),
            label=f"span_lo[{flow_id}]",
        )
        hi = data.draw(
            st.integers(min_value=lo + 1, max_value=length),
            label=f"span_hi[{flow_id}]",
        )
        originals[flow_id] = (payload, (lo, hi))
        packets.append(damaged_packet(plan, flow_id, payload, (lo, hi)))
    delivered, _ = run_threaded(policy, packets, n_flows)
    for flow_id, (payload, span) in originals.items():
        rows = delivered.get(flow_id, [])
        assert len(rows) == 1, f"flow {flow_id} lost its damaged ADU"
        adu = rows[0]
        assert adu.corrupt_spans == (span,)
        patched = bytearray(payload)
        lo, hi = span
        patched[lo:hi] = adu.payload[lo:hi]
        assert bytes(patched) == adu.payload
        # The damage really is present in the delivered bytes.
        assert adu.payload[lo:hi] != payload[lo:hi]


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=HEADER_BYTES + 16, max_value=PAYLOAD_MAX),
    st.data(),
)
def test_threaded_sharded_covered_damage_never_accepted(n_flows, length, data):
    policy = tolerant_policy()
    plan = _PLANS.get_or_compile(
        wire_pipeline(None, integrity=policy), MIPS_R2000
    )
    packets = []
    for flow_id in range(n_flows):
        payload = payload_of(length, flow_id + 1)
        lo = data.draw(
            st.integers(min_value=0, max_value=HEADER_BYTES - 1),
            label=f"span_lo[{flow_id}]",
        )
        packets.append(damaged_packet(plan, flow_id, payload, (lo, lo + 1)))
    delivered, receivers = run_threaded(policy, packets, n_flows)
    assert delivered == {}
    for flow_id, receiver in receivers.items():
        assert receiver.stats.checksum_failures == 1, flow_id
