"""PipelineCompiler / CompiledPlan: plan once, execute many, batch many.

The compiled fast path must be a pure re-scheduling of the existing
engine: same fusion groups, same modelled cycles, and — for the kernel
form — byte-identical outputs whether ADUs run one at a time or packed
into one batched pass.
"""

import pytest

from repro.errors import PipelineError
from repro.ilp.compiler import (
    BatchResult,
    CompiledPlan,
    PipelineCompiler,
    plan_key,
)
from repro.ilp.executor import IntegratedExecutor, LayeredExecutor
from repro.ilp.fusion import fused_group_cost, plan_fusion
from repro.ilp.pipeline import Pipeline
from repro.machine.profile import MICROVAX_III, MIPS_R2000
from repro.stages.base import Facts, PassthroughStage
from repro.stages.checksum import ChecksumComputeStage, internet_checksum
from repro.stages.copy import CopyStage
from repro.stages.encrypt import WordXorStage
from repro.stages.presentation import ByteswapStage


def wire_pipeline(name: str = "wire") -> Pipeline:
    return Pipeline(
        [
            CopyStage(),
            ChecksumComputeStage(),
            WordXorStage(0xDEADBEEF),
            ByteswapStage(),
        ],
        name=name,
    )


class ConvertedCopyStage(CopyStage):
    """A lowerable stage gated on a fact the byteswap provides —
    forces a fusion boundary, giving a fully lowered two-loop plan."""

    requires = frozenset({Facts.CONVERTED})


def two_loop_pipeline() -> Pipeline:
    return Pipeline(
        [
            ChecksumComputeStage(),
            WordXorStage(0x0F0F0F0F),
            ByteswapStage(),
            ConvertedCopyStage(name="post-convert-copy"),
        ],
        name="two-loop",
    )


LENGTHS = [0, 1, 2, 3, 4, 5, 7, 8, 13, 100, 1024, 2048, 2049]


def payload(n: int, seed: int = 7) -> bytes:
    return bytes((seed * 31 + i * 131) % 256 for i in range(n))


# ----------------------------------------------------------------------
# Compilation: the plan mirrors the planner exactly


def test_groups_match_plan_fusion():
    pipeline = wire_pipeline()
    plan = PipelineCompiler(MIPS_R2000).compile(pipeline)
    reference = plan_fusion(pipeline.stages, pipeline.initial_facts)
    assert plan.n_loops == reference.n_loops
    for group, ref_stages in zip(plan.groups, reference.groups):
        assert group.label == "+".join(s.name for s in ref_stages)
        assert (group.stop - group.start) == len(ref_stages)
        assert group.cost == fused_group_cost(ref_stages)
        assert group.cycles_per_word == MIPS_R2000.cycles_per_word(group.cost)


def test_plan_is_fully_lowered_for_kernel_stages():
    plan = PipelineCompiler(MIPS_R2000).compile(wire_pipeline())
    assert plan.fully_lowered
    assert plan.n_loops == 1  # all four stages fuse into one loop


def test_two_loop_plan_structure():
    plan = PipelineCompiler(MIPS_R2000).compile(two_loop_pipeline())
    assert plan.n_loops == 2
    assert plan.fully_lowered
    speculative = PipelineCompiler(MIPS_R2000, speculative=True).compile(
        two_loop_pipeline()
    )
    assert speculative.n_loops == 1
    assert Facts.CONVERTED in speculative.speculative_facts


def test_unlowerable_stage_blocks_kernel_path_only():
    pipeline = Pipeline(
        [CopyStage(), PassthroughStage(name="opaque")], name="mixed"
    )
    plan = PipelineCompiler(MIPS_R2000).compile(pipeline)
    assert not plan.fully_lowered
    with pytest.raises(PipelineError, match="not fully lowered"):
        plan.run(b"data")
    with pytest.raises(PipelineError, match="not fully lowered"):
        plan.run_batch([b"data"])
    # The stage path still works.
    out, _ = plan.execute(pipeline, b"data")
    assert out == b"data"


# ----------------------------------------------------------------------
# execute(): identical semantics to the per-ADU executor


def test_execute_matches_integrated_executor():
    data = payload(4000)
    plan = PipelineCompiler(MIPS_R2000).compile(wire_pipeline())
    out_plan, report_plan = plan.execute(wire_pipeline(), data)
    out_exec, report_exec = IntegratedExecutor(MIPS_R2000).execute(
        wire_pipeline(), data
    )
    assert out_plan == out_exec
    assert report_plan.total_cycles == report_exec.total_cycles
    assert report_plan.mbps() == report_exec.mbps()


def test_execute_rejects_wrong_stage_count():
    plan = PipelineCompiler(MIPS_R2000).compile(wire_pipeline())
    short = Pipeline([CopyStage()], name="short")
    with pytest.raises(PipelineError, match="stages"):
        plan.execute(short, b"data")


# ----------------------------------------------------------------------
# run(): kernel fast path vs the stage path


@pytest.mark.parametrize("n", [n for n in LENGTHS if n % 4 == 0])
def test_run_matches_stage_path_on_aligned_data(n):
    # Cross-path identity is pinned on word-aligned data; on ragged
    # lengths the stage path truncates at each stage boundary while the
    # fused loop keeps pad words live (see DESIGN.md).
    data = payload(n)
    plan = PipelineCompiler(MIPS_R2000).compile(wire_pipeline())
    out_kernel, observations = plan.run(data)
    out_stage, _ = LayeredExecutor(MIPS_R2000).execute(wire_pipeline(), data)
    assert out_kernel == out_stage
    assert observations["checksum-internet"] == internet_checksum(data)


@pytest.mark.parametrize("n", LENGTHS)
def test_run_checksum_observation_all_lengths(n):
    # The checksum kernel precedes the transforms, so its observation is
    # the RFC 1071 checksum of the input at every length.
    data = payload(n)
    plan = PipelineCompiler(MIPS_R2000).compile(wire_pipeline())
    _, observations = plan.run(data)
    assert observations["checksum-internet"] == internet_checksum(data)


# ----------------------------------------------------------------------
# run_batch(): byte- and value-identical to per-ADU run()


def test_run_batch_matches_run_mixed_lengths():
    adus = [payload(n, seed=n + 1) for n in LENGTHS]
    plan = PipelineCompiler(MIPS_R2000).compile(wire_pipeline())
    batch = plan.run_batch(adus)
    assert isinstance(batch, BatchResult)
    assert batch.n_adus == len(adus)
    for i, data in enumerate(adus):
        out, observations = plan.run(data)
        assert batch.outputs[i] == out
        assert (
            batch.observations["checksum-internet"][i]
            == observations["checksum-internet"]
        )


def test_run_batch_matches_run_across_loop_boundary():
    # Two integrated loops: between them the batch must re-zero each
    # row's sub-word padding exactly as the unbatched store/reload does.
    adus = [payload(n, seed=2 * n + 3) for n in LENGTHS]
    plan = PipelineCompiler(MIPS_R2000).compile(two_loop_pipeline())
    assert plan.n_loops == 2
    batch = plan.run_batch(adus)
    for i, data in enumerate(adus):
        out, _ = plan.run(data)
        assert batch.outputs[i] == out


def test_run_batch_single_adu_and_empty_payload():
    plan = PipelineCompiler(MIPS_R2000).compile(wire_pipeline())
    batch = plan.run_batch([b""])
    out, observations = plan.run(b"")
    assert batch.outputs == [out]
    assert batch.observations["checksum-internet"] == [
        observations["checksum-internet"]
    ]


def test_run_batch_rejects_empty_batch():
    plan = PipelineCompiler(MIPS_R2000).compile(wire_pipeline())
    with pytest.raises(PipelineError, match="at least one ADU"):
        plan.run_batch([])


def test_batch_report_sums_per_adu_cycles():
    adus = [payload(n, seed=n) for n in [64, 256, 1024]]
    plan = PipelineCompiler(MIPS_R2000).compile(wire_pipeline())
    batch = plan.run_batch(adus)
    per_adu = sum(
        plan.execute(wire_pipeline(), data)[1].total_cycles for data in adus
    )
    assert batch.report.total_cycles == pytest.approx(per_adu)
    assert batch.report.mode == "integrated-batch"
    assert batch.report.payload_bytes == sum(len(a) for a in adus)


# ----------------------------------------------------------------------
# Plans are profile-specific but shareable


def test_profiles_price_same_plan_differently():
    mips = PipelineCompiler(MIPS_R2000).compile(wire_pipeline())
    uvax = PipelineCompiler(MICROVAX_III).compile(wire_pipeline())
    assert mips.key != uvax.key
    assert (
        mips.groups[0].cycles_per_word != uvax.groups[0].cycles_per_word
    )


def test_plan_key_ignores_pipeline_display_name():
    a = plan_key(wire_pipeline(name="adu-1"), MIPS_R2000)
    b = plan_key(wire_pipeline(name="adu-2"), MIPS_R2000)
    assert a == b


def test_compiled_plan_is_reusable():
    plan = PipelineCompiler(MIPS_R2000).compile(wire_pipeline())
    data = payload(512)
    first = plan.run(data)
    second = plan.run(data)
    assert first == second
