"""Video streaming and striped parallel delivery."""

import pytest

from repro.apps.parallel import striped_delivery
from repro.apps.video import stream_video
from repro.errors import ApplicationError


class TestVideo:
    def test_clean_stream_completes_everything(self):
        result = stream_video(n_frames=10, loss_rate=0.0, reorder_rate=0.0,
                              seed=1)
        assert result.frame_completion_rate == 1.0
        assert result.tile_loss_rate == 0.0
        assert result.tiles_delivered == result.tiles_sent

    def test_no_retransmissions_ever(self):
        result = stream_video(n_frames=10, loss_rate=0.1, seed=2)
        assert result.retransmissions == 0

    def test_loss_degrades_gracefully(self):
        clean = stream_video(n_frames=15, loss_rate=0.0, seed=3)
        lossy = stream_video(n_frames=15, loss_rate=0.1, seed=3)
        assert lossy.frame_completion_rate < clean.frame_completion_rate
        assert lossy.tile_loss_rate > 0
        # But the session survives: most tiles still render.
        assert lossy.tile_loss_rate < 0.5

    def test_jitter_measured(self):
        result = stream_video(n_frames=10, loss_rate=0.02,
                              reorder_rate=0.05, seed=4)
        assert result.mean_jitter >= 0.0

    def test_playout_offset_tradeoff(self):
        tight = stream_video(n_frames=10, seed=5, loss_rate=0.02,
                             reorder_rate=0.1, playout_offset=0.03)
        loose = stream_video(n_frames=10, seed=5, loss_rate=0.02,
                             reorder_rate=0.1, playout_offset=0.3)
        assert loose.tile_loss_rate <= tight.tile_loss_rate

    def test_frame_reports_consistent(self):
        result = stream_video(n_frames=8, loss_rate=0.05, seed=6)
        for frame in result.frames:
            assert (
                frame.tiles_on_time + frame.concealed == frame.tiles_expected
            )

    def test_validation(self):
        with pytest.raises(ApplicationError):
            stream_video(n_frames=0)


class TestParallel:
    def test_alf_scales_with_nodes(self):
        two = striped_delivery(n_nodes=2, mode="alf")
        eight = striped_delivery(n_nodes=8, mode="alf")
        assert (
            eight.aggregate_throughput_bps
            > 3 * two.aggregate_throughput_bps / 2
        )

    def test_serial_capped_at_one_node(self):
        one = striped_delivery(n_nodes=1, mode="serial")
        eight = striped_delivery(n_nodes=8, mode="serial")
        ratio = eight.aggregate_throughput_bps / one.aggregate_throughput_bps
        assert ratio < 1.5  # the hot spot does not scale

    def test_alf_beats_serial_at_scale(self):
        alf = striped_delivery(n_nodes=4, mode="alf")
        serial = striped_delivery(n_nodes=4, mode="serial")
        assert alf.aggregate_throughput_bps > 2 * serial.aggregate_throughput_bps

    def test_work_is_striped_evenly(self):
        result = striped_delivery(n_nodes=4, n_adus=64, mode="alf")
        assert len(set(result.per_node_bytes)) == 1  # 64 % 4 == 0

    def test_all_bytes_processed_in_both_modes(self):
        for mode in ("alf", "serial"):
            result = striped_delivery(n_nodes=4, n_adus=32, mode=mode)
            assert sum(result.per_node_bytes) == result.total_bytes

    def test_validation(self):
        with pytest.raises(ApplicationError):
            striped_delivery(mode="quantum")
        with pytest.raises(ApplicationError):
            striped_delivery(n_nodes=0)


class TestVideoFec:
    def test_fec_improves_frame_completion_without_retransmission(self):
        plain = stream_video(n_frames=20, loss_rate=0.05, seed=4)
        fec = stream_video(n_frames=20, loss_rate=0.05, seed=4, fec_group=4)
        assert fec.retransmissions == 0
        assert fec.fec_recoveries > 0
        assert fec.tile_loss_rate < plain.tile_loss_rate
        assert fec.frame_completion_rate >= plain.frame_completion_rate

    def test_fec_clean_path_is_transparent(self):
        result = stream_video(n_frames=10, loss_rate=0.0, reorder_rate=0.0,
                              seed=5, fec_group=4)
        assert result.frame_completion_rate == 1.0
        assert result.fec_recoveries == 0
