"""Buffers and zero-copy views."""

import pytest

from repro.buffers.buffer import Buffer, BufferView
from repro.errors import BufferError_


def test_buffer_basic_rw():
    buffer = Buffer(16, label="b")
    buffer.write(4, b"abcd")
    assert buffer.read(4, 4) == b"abcd"
    assert buffer.read(0, 4) == b"\x00" * 4


def test_from_bytes_copies():
    src = bytearray(b"hello")
    buffer = Buffer.from_bytes(bytes(src))
    src[0] = 0
    assert buffer.read(0, 5) == b"hello"


def test_negative_size_rejected():
    with pytest.raises(BufferError_):
        Buffer(-1)


def test_write_out_of_range():
    buffer = Buffer(8)
    with pytest.raises(BufferError_):
        buffer.write(6, b"abc")
    with pytest.raises(BufferError_):
        buffer.write(-1, b"a")


def test_read_out_of_range():
    buffer = Buffer(8)
    with pytest.raises(BufferError_):
        buffer.read(6, 3)
    with pytest.raises(BufferError_):
        buffer.read(0, -1)


def test_distinct_buffers_never_alias():
    a, b = Buffer(16), Buffer(16)
    assert a.base_address != b.base_address


def test_view_tobytes():
    buffer = Buffer.from_bytes(b"0123456789")
    view = buffer.view(2, 4)
    assert view.tobytes() == b"2345"
    assert len(view) == 4
    assert view.address == buffer.base_address + 2


def test_view_defaults_to_rest():
    buffer = Buffer.from_bytes(b"0123456789")
    assert buffer.view(6).tobytes() == b"6789"


def test_view_bounds_checked():
    buffer = Buffer(8)
    with pytest.raises(BufferError_):
        BufferView(buffer, 4, 8)
    with pytest.raises(BufferError_):
        BufferView(buffer, -1, 2)


def test_subview():
    buffer = Buffer.from_bytes(b"0123456789")
    view = buffer.view(2, 6)  # "234567"
    sub = view.subview(1, 3)
    assert sub.tobytes() == b"345"


def test_subview_bounds():
    view = Buffer.from_bytes(b"0123").view()
    with pytest.raises(BufferError_):
        view.subview(2, 5)


def test_view_store():
    buffer = Buffer(8)
    view = buffer.view(2, 4)
    view.store(b"xy")
    assert buffer.read(2, 2) == b"xy"


def test_view_store_overflow():
    view = Buffer(8).view(2, 2)
    with pytest.raises(BufferError_):
        view.store(b"abc")


def test_memoryview_is_writable_window():
    buffer = Buffer.from_bytes(b"aaaa")
    view = buffer.view(1, 2)
    view.memoryview()[0] = ord("b")
    assert buffer.read(0, 4) == b"abaa"
