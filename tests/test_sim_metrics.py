"""Metric sampling."""

import pytest

from repro.errors import SimulationError
from repro.sim.eventloop import EventLoop
from repro.sim.metrics import MetricSampler, Series


class TestSeries:
    def test_stats(self):
        series = Series("s")
        for t, v in enumerate([1.0, 3.0, 2.0]):
            series.append(float(t), v)
        assert len(series) == 3
        assert series.max == 3.0
        assert series.mean == pytest.approx(2.0)
        assert series.percentile(50) == pytest.approx(2.0)

    def test_empty_stats(self):
        series = Series("s")
        assert series.max == 0.0
        assert series.mean == 0.0
        assert series.percentile(99) == 0.0
        assert series.time_above(0) == 0.0

    def test_time_above(self):
        series = Series("s")
        for t, v in [(0.0, 5.0), (1.0, 5.0), (2.0, 0.0), (3.0, 0.0)]:
            series.append(t, v)
        assert series.time_above(1.0) == pytest.approx(2.0)


class TestSampler:
    def test_samples_on_period(self):
        loop = EventLoop()
        state = {"v": 0.0}
        sampler = MetricSampler(loop, period=0.1)
        series = sampler.watch("v", lambda: state["v"])
        sampler.start()
        loop.schedule(0.25, lambda: state.update(v=7.0))
        loop.schedule(0.5, sampler.stop)
        loop.run(until=1.0)
        assert 5 <= len(series) <= 7
        assert series.max == 7.0

    def test_multiple_probes_share_timestamps(self):
        loop = EventLoop()
        sampler = MetricSampler(loop, period=0.1)
        a = sampler.watch("a", lambda: 1.0)
        b = sampler.watch("b", lambda: 2.0)
        sampler.start()
        loop.schedule(0.3, sampler.stop)
        loop.run(until=1.0)
        assert a.times == b.times

    def test_duplicate_name_rejected(self):
        sampler = MetricSampler(EventLoop())
        sampler.watch("x", lambda: 0.0)
        with pytest.raises(SimulationError):
            sampler.watch("x", lambda: 0.0)

    def test_getitem(self):
        sampler = MetricSampler(EventLoop())
        series = sampler.watch("x", lambda: 0.0)
        assert sampler["x"] is series
        with pytest.raises(SimulationError):
            sampler["missing"]

    def test_bad_period(self):
        with pytest.raises(SimulationError):
            MetricSampler(EventLoop(), period=0)

    def test_start_idempotent(self):
        loop = EventLoop()
        sampler = MetricSampler(loop, period=0.1)
        series = sampler.watch("x", lambda: 1.0)
        sampler.start()
        sampler.start()
        loop.schedule(0.2, sampler.stop)
        loop.run(until=1.0)
        # Double-start must not double-sample.
        assert len(set(series.times)) == len(series.times)
