"""Simulator core: event loop, RNG streams, tracer."""

import pytest

from repro.errors import SimulationError
from repro.sim.eventloop import EventLoop
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer


class TestEventLoop:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        log = []
        loop.schedule(2.0, log.append, "late")
        loop.schedule(1.0, log.append, "early")
        loop.run()
        assert log == ["early", "late"]
        assert loop.now == 2.0

    def test_ties_break_by_schedule_order(self):
        loop = EventLoop()
        log = []
        loop.schedule(1.0, log.append, "first")
        loop.schedule(1.0, log.append, "second")
        loop.run()
        assert log == ["first", "second"]

    def test_run_until_advances_clock(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda: None)
        loop.run(until=2.0)
        assert loop.now == 2.0
        assert loop.pending == 1
        loop.run()
        assert loop.now == 5.0

    def test_events_scheduled_during_run(self):
        loop = EventLoop()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                loop.schedule(1.0, chain, n + 1)

        loop.schedule(0.0, chain, 0)
        loop.run()
        assert log == [0, 1, 2, 3]
        assert loop.now == 3.0

    def test_cancel(self):
        loop = EventLoop()
        log = []
        event = loop.schedule(1.0, log.append, "no")
        loop.schedule(2.0, log.append, "yes")
        event.cancel()
        loop.run()
        assert log == ["yes"]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule(-1.0, lambda: None)

    def test_schedule_at(self):
        loop = EventLoop()
        log = []
        loop.schedule_at(3.0, log.append, "x")
        loop.run()
        assert loop.now == 3.0

    def test_max_events_guard(self):
        loop = EventLoop()

        def forever():
            loop.schedule(0.1, forever)

        loop.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            loop.run(max_events=100)

    def test_events_run_counter(self):
        loop = EventLoop()
        for _ in range(5):
            loop.schedule(1.0, lambda: None)
        loop.run()
        assert loop.events_run == 5

    def test_late_event_raises_unless_tolerated(self):
        # A cross-thread scheduler can land an event timed before the
        # loop's clock (it snapshotted `now` before the owner advanced
        # it).  The strict serial default treats that as corruption;
        # a threaded sharded host opts in to running it late instead,
        # without ever rewinding the clock.
        def make_late():
            loop = EventLoop()
            loop.schedule(2.0, lambda: None)
            loop.run()
            # Simulate the race: an event carrying a stale timestamp.
            event = loop.schedule(0.0, log.append, "late")
            event.time = 1.0
            return loop

        log = []
        loop = make_late()
        with pytest.raises(SimulationError, match="time went backwards"):
            loop.run()
        log = []
        loop = make_late()
        loop.tolerate_late = True
        loop.run()
        assert log == ["late"]
        assert loop.late_events == 1
        assert loop.now == 2.0  # the clock never rewound


class TestRngStreams:
    def test_same_seed_same_draws(self):
        a = RngStreams(1).stream("x")
        b = RngStreams(1).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_independent(self):
        streams = RngStreams(1)
        assert streams.stream("a").random() != streams.stream("b").random()

    def test_different_seeds_differ(self):
        assert RngStreams(1).stream("x").random() != RngStreams(2).stream(
            "x"
        ).random()

    def test_creation_order_irrelevant(self):
        fwd = RngStreams(3)
        first_a = fwd.stream("a").random()
        rev = RngStreams(3)
        rev.stream("b")  # create b first
        assert rev.stream("a").random() == first_a

    def test_stream_is_cached(self):
        streams = RngStreams(1)
        assert streams.stream("x") is streams.stream("x")
        assert streams.names() == ["x"]


class TestTracer:
    def test_collects(self):
        tracer = Tracer()
        tracer.emit(1.0, "net", "sent", packet=4)
        tracer.emit(2.0, "app", "done")
        assert len(tracer.records) == 2
        assert tracer.records[0].field_dict() == {"packet": 4}

    def test_filters(self):
        tracer = Tracer()
        tracer.emit(1.0, "a", "m1")
        tracer.emit(2.0, "b", "m2")
        assert [r.message for r in tracer.by_category("a")] == ["m1"]
        assert tracer.messages() == ["m1", "m2"]
        assert tracer.messages("b") == ["m2"]

    def test_disabled_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.emit(1.0, "a", "m")
        assert tracer.records == []

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1.0, "a", "m")
        tracer.clear()
        assert tracer.records == []
