"""FEC integrated into the ALF transport (zero-RTT repair)."""

import pytest

from repro.bench.workloads import octet_payload
from repro.core.adu import Adu
from repro.errors import TransportError
from repro.net.topology import two_hosts
from repro.transport.alf import AlfReceiver, AlfSender, RecoveryMode


def run(fec_group, loss_rate=0.06, n_adus=60, seed=11,
        recovery=RecoveryMode.NO_RETRANSMIT):
    path = two_hosts(seed=seed, loss_rate=loss_rate, bandwidth_bps=50e6)
    got = {}
    receiver = AlfReceiver(
        path.loop, path.b, "a", 1,
        deliver=lambda d: got.setdefault(d.sequence, d.payload),
        expected_adus=n_adus,
        ack_interval=0.0 if recovery is RecoveryMode.NO_RETRANSMIT else 0.05,
    )
    sender = AlfSender(
        path.loop, path.a, "b", 1, mtu=500, recovery=recovery,
        fec_group=fec_group,
    )
    adus = [Adu(i, octet_payload(2234, seed=10 + i)) for i in range(n_adus)]
    for adu in adus:
        sender.send_adu(adu)
    sender.close()
    path.loop.run(until=120)
    return got, sender, receiver, adus


def test_fec_disabled_has_no_recoveries():
    got, _, receiver, _ = run(fec_group=None)
    assert receiver.fec_recoveries == 0


def test_fec_rescues_adus_without_retransmission():
    plain, _, _, _ = run(fec_group=None)
    fec, sender, receiver, adus = run(fec_group=4)
    assert sender.stats.retransmissions == 0
    assert receiver.fec_recoveries > 0
    assert len(fec) > len(plain)
    # Every recovered payload is byte-exact.
    assert all(fec[a.sequence] == a.payload for a in adus if a.sequence in fec)


def test_fec_no_loss_is_transparent():
    got, sender, receiver, adus = run(fec_group=4, loss_rate=0.0, n_adus=10)
    assert len(got) == 10
    assert receiver.fec_recoveries == 0
    assert all(got[a.sequence] == a.payload for a in adus)


def test_fec_costs_extra_units():
    _, plain_sender, _, _ = run(fec_group=None, loss_rate=0.0, n_adus=5)
    _, fec_sender, _, _ = run(fec_group=4, loss_rate=0.0, n_adus=5)
    assert fec_sender.stats.segments_sent > plain_sender.stats.segments_sent


def test_fec_composes_with_retransmission():
    """TRANSPORT_BUFFER + FEC: single losses repair instantly, double
    losses still repair by retransmission — everything arrives."""
    got, sender, receiver, adus = run(
        fec_group=4, loss_rate=0.08,
        recovery=RecoveryMode.TRANSPORT_BUFFER,
    )
    assert len(got) == 60
    assert all(got[a.sequence] == a.payload for a in adus)
    assert receiver.fec_recoveries > 0


def test_fec_group_validation():
    path = two_hosts()
    with pytest.raises(TransportError):
        AlfSender(path.loop, path.a, "b", 1, fec_group=0)


def test_single_fragment_adu_with_fec():
    got, _, receiver, adus = run(fec_group=4, loss_rate=0.0, n_adus=3)
    # ADU payload 2234 B at mtu 500 -> 5 fragments; also check a tiny one.
    path = two_hosts(seed=30)
    tiny = {}
    AlfReceiver(path.loop, path.b, "a", 2,
                deliver=lambda d: tiny.setdefault(d.sequence, d.payload))
    sender = AlfSender(path.loop, path.a, "b", 2, mtu=500, fec_group=4)
    sender.send_adu(Adu(0, b"small"))
    sender.close()
    path.loop.run(until=10)
    assert tiny[0] == b"small"
