"""TCP-style transport: integrity under every failure mode, plus the
stall behaviour the paper critiques."""

import pytest

from repro.bench.workloads import file_payload
from repro.errors import TransportError
from repro.net.topology import two_hosts
from repro.transport.tcpstyle import TcpStyleReceiver, TcpStyleSender


def run_transfer(
    data: bytes,
    seed: int = 0,
    loss_rate: float = 0.0,
    reorder_rate: float = 0.0,
    duplicate_rate: float = 0.0,
    horizon: float = 200.0,
    **sender_kwargs,
):
    path = two_hosts(
        seed=seed,
        loss_rate=loss_rate,
        reorder_rate=reorder_rate,
        duplicate_rate=duplicate_rate,
        bandwidth_bps=50e6,
        reverse_loss_rate=loss_rate / 2,
    )
    received = bytearray()
    finished = []
    receiver = TcpStyleReceiver(
        path.loop, path.b, "a", 1, deliver=received.extend
    )
    sender = TcpStyleSender(
        path.loop, path.a, "b", 1,
        on_complete=lambda: finished.append(path.loop.now),
        **sender_kwargs,
    )
    sender.send(data)
    sender.close()
    path.loop.run(until=horizon)
    return bytes(received), sender, receiver, finished


class TestCleanPath:
    def test_full_delivery(self, small_file):
        received, sender, receiver, finished = run_transfer(small_file)
        assert received == small_file
        assert finished  # completion fired
        assert sender.stats.retransmissions == 0
        assert receiver.total_blocked_time == 0.0

    def test_empty_send_is_noop(self):
        received, sender, receiver, finished = run_transfer(b"")
        assert received == b""
        assert finished

    def test_send_after_close_rejected(self):
        path = two_hosts()
        TcpStyleReceiver(path.loop, path.b, "a", 1, deliver=lambda d: None)
        sender = TcpStyleSender(path.loop, path.a, "b", 1)
        sender.close()
        with pytest.raises(TransportError):
            sender.send(b"more")

    def test_window_limits_inflight(self):
        path = two_hosts(bandwidth_bps=1e9)
        TcpStyleReceiver(path.loop, path.b, "a", 1, deliver=lambda d: None)
        sender = TcpStyleSender(
            path.loop, path.a, "b", 1, window_bytes=4096,
            use_congestion_control=False,
        )
        sender.send(bytes(100_000))
        assert sender.unacked_bytes <= 4096

    def test_mss_validation(self):
        path = two_hosts()
        with pytest.raises(TransportError):
            TcpStyleSender(path.loop, path.a, "b", 1, mss=0)


class TestLossyPath:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_integrity_under_loss(self, seed, small_file):
        received, sender, _, finished = run_transfer(
            small_file, seed=seed, loss_rate=0.05
        )
        assert received == small_file
        assert finished
        assert sender.stats.retransmissions > 0

    def test_integrity_under_reordering(self, small_file):
        received, *_ = run_transfer(small_file, seed=4, reorder_rate=0.1)
        assert received == small_file

    def test_integrity_under_duplication(self, small_file):
        received, sender, receiver, _ = run_transfer(
            small_file, seed=5, duplicate_rate=0.1
        )
        assert received == small_file

    def test_integrity_under_everything(self, small_file):
        received, *_ = run_transfer(
            small_file, seed=6, loss_rate=0.05, reorder_rate=0.05,
            duplicate_rate=0.05,
        )
        assert received == small_file

    def test_loss_causes_delivery_stall(self, small_file):
        """The §5 behaviour: data behind a hole waits; the receiver
        records blocked time."""
        _, _, receiver, _ = run_transfer(small_file, seed=7, loss_rate=0.05)
        assert receiver.total_blocked_time > 0.0

    def test_loss_slows_completion(self, small_file):
        _, _, _, clean = run_transfer(small_file, seed=8)
        _, _, _, lossy = run_transfer(small_file, seed=8, loss_rate=0.05)
        assert lossy[0] > clean[0]


class TestControlAccounting:
    def test_control_path_is_tens_of_instructions(self, small_file):
        from repro.control.instructions import InstructionCounter

        path = two_hosts(seed=9, bandwidth_bps=50e6)
        counter = InstructionCounter()
        received = bytearray()
        TcpStyleReceiver(
            path.loop, path.b, "a", 1, deliver=received.extend,
            counter=counter,
        )
        sender = TcpStyleSender(
            path.loop, path.a, "b", 1, counter=counter,
        )
        sender.send(small_file)
        sender.close()
        path.loop.run(until=100)
        assert bytes(received) == small_file
        per_packet = counter.per_packet()
        assert 10 < per_packet < 200  # tens, not hundreds (paper §4)


class TestFastRetransmit:
    def test_triple_dup_ack_recovers_before_timeout(self, small_file):
        """With a long RTO, recovery must come from duplicate ACKs."""
        received, sender, _, finished = run_transfer(
            small_file, seed=10, loss_rate=0.03, rto=5.0,
        )
        assert received == small_file
        assert finished
        assert finished[0] < 20.0  # far less than a few RTOs
