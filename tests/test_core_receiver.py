"""The two-stage receive architecture."""

import pytest

from repro.core.adu import Adu, AduFragment, fragment_adu
from repro.core.receiver import TwoStageReceiver
from repro.machine.profile import MIPS_R2000
from repro.stages.checksum import ChecksumVerifyStage
from repro.stages.copy import CopyStage


def stage_two(adu):
    verify = ChecksumVerifyStage()
    verify.expect(adu.checksum)
    return [verify, CopyStage(name="move", category="application")]


def make_receiver(**kwargs):
    return TwoStageReceiver(MIPS_R2000, stage_two, **kwargs)


def feed_all(receiver, adu, mtu=100):
    result = None
    for fragment in fragment_adu(adu, mtu):
        result = receiver.feed(fragment)
    return result


def test_complete_adu_processed():
    receiver = make_receiver()
    processed = feed_all(receiver, Adu(0, bytes(250)))
    assert processed is not None
    assert processed.in_order
    assert processed.report.total_cycles > 0


def test_out_of_order_adus_processed_immediately():
    """The headline ALF behaviour: ADU 1 completes and is processed while
    ADU 0 is still missing a fragment."""
    receiver = make_receiver()
    adu0, adu1 = Adu(0, bytes(250)), Adu(1, bytes(250))
    fragments0 = fragment_adu(adu0, 100)
    receiver.feed(fragments0[0])  # ADU 0 incomplete
    processed1 = feed_all(receiver, adu1)
    assert processed1 is not None
    assert not processed1.in_order
    assert receiver.out_of_order_count == 1
    assert receiver.pending_adus == 1
    # ADU 0 finishes later and is processed then.
    for fragment in fragments0[1:]:
        receiver.feed(fragment)
    assert len(receiver.processed) == 2


def test_incomplete_returns_none():
    receiver = make_receiver()
    fragments = fragment_adu(Adu(0, bytes(250)), 100)
    assert receiver.feed(fragments[0]) is None
    assert receiver.pending_adus == 1


def test_duplicate_fragments_ignored():
    receiver = make_receiver()
    fragments = fragment_adu(Adu(0, bytes(200)), 100)
    receiver.feed(fragments[0])
    assert receiver.feed(fragments[0]) is None
    receiver.feed(fragments[1])
    assert len(receiver.processed) == 1
    # Fragments of an already-done ADU are discarded too.
    assert receiver.feed(fragments[0]) is None


def test_corrupt_adu_fails_not_crashes():
    receiver = make_receiver()
    adu = Adu(0, bytes(200))
    fragments = fragment_adu(adu, 100)
    forged = AduFragment(
        adu_sequence=0, index=1, total=2, adu_length=200,
        adu_checksum=fragments[0].adu_checksum, name={},
        payload=b"\xff" * 100,
    )
    assert receiver.feed(fragments[0]) is None
    assert receiver.feed(forged) is None
    assert receiver.failed_adus == [0]


def test_integrated_cheaper_than_layered():
    integrated = make_receiver(integrated=True)
    layered = make_receiver(integrated=False)
    adu = Adu(0, bytes(1000))
    feed_all(integrated, adu)
    feed_all(layered, adu)
    assert (
        integrated.total_stage_two_cycles()
        < layered.total_stage_two_cycles()
    )


def test_on_adu_callback():
    seen = []
    receiver = TwoStageReceiver(
        MIPS_R2000, stage_two, on_adu=lambda p: seen.append(p.adu.sequence)
    )
    feed_all(receiver, Adu(4, bytes(50)))
    assert seen == [4]


def test_stage_one_is_control_only():
    """Stage one charges control instructions, not data passes."""
    receiver = make_receiver()
    fragments = fragment_adu(Adu(0, bytes(300)), 100)
    receiver.feed(fragments[0])
    assert receiver.counter.total > 0
    assert receiver.total_stage_two_cycles() == 0.0  # nothing complete yet
