"""Application-process model and the protocol stack builder."""

import pytest

from repro.core.app import ApplicationProcess
from repro.core.stack import ProtocolStack, StackConfig
from repro.errors import ApplicationError, PipelineError
from repro.machine.profile import MICROVAX_III, MIPS_R2000
from repro.presentation.abstract import ArrayOf, Int32, OctetString
from repro.presentation.ber import BerCodec
from repro.presentation.costs import RAW_IMAGE, TOOLKIT_BER, TUNED_BER
from repro.presentation.xdr import XdrCodec
from repro.sim.eventloop import EventLoop


class TestApplicationProcess:
    def test_processes_at_rate(self):
        loop = EventLoop()
        app = ApplicationProcess(loop, processing_rate_bps=8000)
        app.submit("work", 1000)  # 8000 bits at 8000 bps = 1s
        loop.run()
        assert app.processed_bytes == 1000
        assert loop.now == pytest.approx(1.0)

    def test_serial_queueing(self):
        loop = EventLoop()
        app = ApplicationProcess(loop, processing_rate_bps=8000)
        app.submit("a", 1000)
        app.submit("b", 1000)
        assert app.backlog == 1
        loop.run()
        assert app.completed[1].finished_at == pytest.approx(2.0)

    def test_utilization_full_when_saturated(self):
        loop = EventLoop()
        app = ApplicationProcess(loop, processing_rate_bps=8000)
        app.submit("a", 1000)
        app.submit("b", 1000)
        loop.run()
        assert app.utilization() == pytest.approx(1.0)

    def test_idle_gap_lowers_utilization(self):
        loop = EventLoop()
        app = ApplicationProcess(loop, processing_rate_bps=8000)
        app.submit("a", 1000)
        loop.schedule(3.0, app.submit, "b", 1000)
        loop.run()
        assert app.utilization() == pytest.approx(0.5)

    def test_on_done_callback(self):
        loop = EventLoop()
        done = []
        app = ApplicationProcess(loop, 8000, on_done=done.append)
        app.submit("x", 100)
        loop.run()
        assert done[0].label == "x"

    def test_effective_throughput(self):
        loop = EventLoop()
        app = ApplicationProcess(loop, processing_rate_bps=8000)
        app.submit("a", 1000)
        loop.run()
        assert app.effective_throughput_bps() == pytest.approx(8000.0)

    def test_validation(self):
        loop = EventLoop()
        with pytest.raises(ApplicationError):
            ApplicationProcess(loop, 0)
        with pytest.raises(ApplicationError):
            ApplicationProcess(loop, 100).submit("x", -1)


class TestProtocolStack:
    def test_roundtrip_with_codec(self, int_array):
        stack = ProtocolStack(StackConfig(schema=ArrayOf(Int32())))
        value, send_report, receive_report = stack.transfer(int_array)
        assert value == int_array
        assert send_report.total_cycles > 0
        assert receive_report.total_cycles > 0

    def test_roundtrip_image_mode(self, payload_4k):
        stack = ProtocolStack(StackConfig(codec=None))
        value, _, _ = stack.transfer(payload_4k)
        assert value == payload_4k

    def test_roundtrip_with_encryption(self, payload_4k):
        stack = ProtocolStack(
            StackConfig(
                schema=OctetString(), codec=BerCodec(), encrypt_key=42
            )
        )
        value, _, _ = stack.transfer(payload_4k)
        assert value == payload_4k

    def test_xdr_stack(self, int_array):
        stack = ProtocolStack(
            StackConfig(schema=ArrayOf(Int32()), codec=XdrCodec())
        )
        value, _, _ = stack.transfer(int_array)
        assert value == int_array

    def test_codec_requires_schema(self):
        with pytest.raises(PipelineError):
            ProtocolStack(StackConfig(schema=None))

    def test_integrated_cheaper_than_layered(self, int_array):
        layered = ProtocolStack(
            StackConfig(schema=ArrayOf(Int32()), integrated=False)
        )
        integrated = ProtocolStack(
            StackConfig(schema=ArrayOf(Int32()), integrated=True)
        )
        layered.transfer(int_array)
        integrated.transfer(int_array)
        assert integrated.total_cycles() < layered.total_cycles()

    def test_corrupted_wire_detected(self, int_array):
        from repro.errors import StageError

        stack = ProtocolStack(StackConfig(schema=ArrayOf(Int32())))
        sent = stack.send(int_array)
        tampered = b"\x00" + sent.wire_bytes[1:]
        with pytest.raises(StageError, match="mismatch"):
            stack.receive(tampered, sent.checksum)

    def test_no_retransmit_buffer_option(self, int_array):
        with_buffer = ProtocolStack(
            StackConfig(schema=ArrayOf(Int32()), retransmit_buffering=True)
        )
        without = ProtocolStack(
            StackConfig(schema=ArrayOf(Int32()), retransmit_buffering=False)
        )
        with_buffer.send(int_array)
        without.send(int_array)
        assert (
            without.send_reports[0].total_cycles
            < with_buffer.send_reports[0].total_cycles
        )

    def test_presentation_share_raw_vs_toolkit(self, payload_4k):
        toolkit = ProtocolStack(
            StackConfig(
                schema=ArrayOf(Int32()), codec_costs=TOOLKIT_BER
            )
        )
        toolkit.transfer(list(range(1000)))
        assert toolkit.presentation_share() > 0.9

    def test_machine_choice_matters(self, int_array):
        fast = ProtocolStack(
            StackConfig(schema=ArrayOf(Int32()), machine=MIPS_R2000)
        )
        slow = ProtocolStack(
            StackConfig(schema=ArrayOf(Int32()), machine=MICROVAX_III)
        )
        fast.transfer(int_array)
        slow.transfer(int_array)
        assert slow.total_cycles() > fast.total_cycles()

    def test_presentation_share_zero_before_traffic(self):
        stack = ProtocolStack(StackConfig(schema=ArrayOf(Int32())))
        assert stack.presentation_share() == 0.0
