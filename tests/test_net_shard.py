"""Sharded hosts: flow-hash demux, serial scheduler, worker shards."""

from __future__ import annotations

import random
import zlib

import pytest

from repro.core.adu import Adu, fragment_adu
from repro.errors import NetworkError
from repro.machine.accounting import ShardCounters
from repro.net.host import Host
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.shard import (
    SerialShardScheduler,
    ShardedHost,
    shard_index,
)
from repro.net.topology import two_hosts
from repro.sim.eventloop import EventLoop
from repro.sim.rng import RngStreams
from repro.stages.checksum import internet_checksum
from repro.transport.alf import AlfReceiver, AlfSender
from repro.transport.alf.receiver import PROTOCOL


def adu_payload(seed: int, n_bytes: int = 128) -> bytes:
    return random.Random(seed).randbytes(n_bytes)


def adu_packets(flow_id, payloads, mtu=2048):
    """The cleartext wire stream one flow's sender emits."""
    packets = []
    for sequence, payload in enumerate(payloads):
        adu = Adu(sequence=sequence, payload=payload, name={"i": sequence})
        for fragment in fragment_adu(
            adu, mtu, checksum=internet_checksum(payload)
        ):
            packets.append(
                Packet(
                    src="a",
                    dst="b",
                    protocol=PROTOCOL,
                    flow_id=flow_id,
                    header=AlfSender._fragment_header(fragment),
                    payload=fragment.payload,
                )
            )
    return packets


def make_sharded(n_shards=4, **kwargs):
    path = two_hosts(seed=11)
    counters = ShardCounters()
    sharded = ShardedHost(path.b, n_shards, counters=counters, **kwargs)
    return path, sharded, counters


def bind_flow(sharded, flow_id, delivered, **kwargs):
    """A cleartext receiver for ``flow_id`` on its home shard."""
    shard = sharded.shard_for(PROTOCOL, flow_id)
    receiver = AlfReceiver(
        shard.loop,
        shard.host,
        "a",
        flow_id,
        deliver=lambda d, fid=flow_id: delivered.setdefault(fid, []).append(
            bytes(d.payload)
        ),
        ack_interval=0,
        drain_engine=shard.engine,
        **kwargs,
    )
    return shard, receiver


class TestShardIndex:
    def test_placement_is_stable_hash_mod_n(self):
        for flow_id in range(32):
            expected = zlib.crc32(f"alf/{flow_id}".encode()) % 4
            assert shard_index("alf", flow_id, 4) == expected
            # Same answer every call: placement is a pure function.
            assert shard_index("alf", flow_id, 4) == expected

    def test_all_shards_get_flows(self):
        indices = {shard_index("alf", flow_id, 4) for flow_id in range(64)}
        assert indices == {0, 1, 2, 3}

    def test_single_shard_takes_everything(self):
        assert all(
            shard_index("alf", flow_id, 1) == 0 for flow_id in range(16)
        )

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(NetworkError):
            shard_index("alf", 1, 0)
        with pytest.raises(NetworkError):
            ShardedHost(Host(EventLoop(), "b"), 0)


class TestDemuxStability:
    def test_flow_never_migrates_across_bursts(self):
        path, sharded, _ = make_sharded()
        flow_id = 7
        home = sharded.shard_for(PROTOCOL, flow_id)
        delivered: dict[int, list[bytes]] = {}
        bind_flow(sharded, flow_id, delivered)
        payloads = [adu_payload(70 + i) for i in range(6)]
        packets = adu_packets(flow_id, payloads, mtu=64)  # multi-fragment
        # Mixed arrival shapes: a burst train, then loose singles.
        sharded.receive_burst(packets[: len(packets) // 2])
        for packet in packets[len(packets) // 2 :]:
            sharded.receive(packet)
        sharded.drain()
        for shard in sharded.shards:
            expected = len(packets) if shard is home else 0
            assert shard.host.received == expected
        assert delivered[flow_id] == payloads

    def test_flow_keeps_its_shard_across_close_and_rebind(self):
        path, sharded, _ = make_sharded()
        flow_id = 12
        home = sharded.shard_for(PROTOCOL, flow_id)
        delivered: dict[int, list[bytes]] = {}
        _, receiver = bind_flow(sharded, flow_id, delivered)
        first = [adu_payload(120)]
        sharded.receive_burst(adu_packets(flow_id, first))
        sharded.drain()
        receiver.close()
        # Rebind the same flow id: placement must not move (the shard
        # is a pure function of the flow key, so the reopened flow's
        # state lands exactly where the old packets went).
        assert sharded.shard_for(PROTOCOL, flow_id) is home
        _, reopened = bind_flow(sharded, flow_id, delivered)
        second = [adu_payload(121)]
        sharded.receive_burst(adu_packets(flow_id, second))
        sharded.drain()
        assert sharded.shard_for(PROTOCOL, flow_id) is home
        for shard in sharded.shards:
            assert shard.host.received == (2 if shard is home else 0)
        assert delivered[flow_id] == first + second
        reopened.close()

    def test_packet_train_hits_the_placement_memo(self):
        path, sharded, counters = make_sharded()
        delivered: dict[int, list[bytes]] = {}
        bind_flow(sharded, 3, delivered)
        payloads = [adu_payload(30 + i) for i in range(4)]
        packets = adu_packets(3, payloads, mtu=64)
        sharded.receive_burst(packets)
        sharded.drain()
        snap = counters.snapshot()
        # One hash for the train's first packet, memo for the rest.
        assert snap["hash_dispatches"] == 1
        assert snap["memo_hits"] == len(packets) - 1
        assert snap["memo_hit_rate"] == pytest.approx(
            (len(packets) - 1) / len(packets)
        )

    def test_burst_grouping_one_service_per_run(self):
        path, sharded, counters = make_sharded()
        delivered: dict[int, list[bytes]] = {}
        # Two flows on different shards, interleaved as two trains.
        flow_a = 0
        flow_b = next(
            fid
            for fid in range(1, 64)
            if sharded.shard_for(PROTOCOL, fid)
            is not sharded.shard_for(PROTOCOL, flow_a)
        )
        bind_flow(sharded, flow_a, delivered)
        bind_flow(sharded, flow_b, delivered)
        train_a = adu_packets(flow_a, [adu_payload(1), adu_payload(2)])
        train_b = adu_packets(flow_b, [adu_payload(3), adu_payload(4)])
        sharded.receive_burst(train_a + train_b)
        sharded.drain()
        snap = counters.snapshot()
        assert snap["bursts"] == 1
        # Consecutive same-shard packets hand over as one run each.
        assert snap["worker_services"] == 2
        assert delivered[flow_a] and delivered[flow_b]


class TestSerialShardScheduler:
    def test_merges_loops_in_global_time_order(self):
        loops = [EventLoop(), EventLoop()]
        order: list[str] = []
        loops[0].schedule(0.3, lambda: order.append("a@0.3"))
        loops[1].schedule(0.1, lambda: order.append("b@0.1"))
        loops[0].schedule(0.2, lambda: order.append("a@0.2"))
        scheduler = SerialShardScheduler(loops)
        assert scheduler.run(until=1.0) == 3
        assert order == ["b@0.1", "a@0.2", "a@0.3"]
        assert scheduler.steps == 3
        assert all(loop.now == 1.0 for loop in loops)

    def test_simultaneous_events_break_ties_by_registration(self):
        loops = [EventLoop(), EventLoop()]
        order: list[int] = []
        loops[1].schedule(0.5, lambda: order.append(1))
        loops[0].schedule(0.5, lambda: order.append(0))
        SerialShardScheduler(loops).run(until=1.0)
        assert order == [0, 1]

    def test_until_bounds_execution_and_advances_clocks(self):
        loops = [EventLoop(), EventLoop()]
        order: list[str] = []
        loops[0].schedule(0.1, lambda: order.append("early"))
        loops[1].schedule(5.0, lambda: order.append("late"))
        scheduler = SerialShardScheduler(loops)
        assert scheduler.run(until=1.0) == 1
        assert order == ["early"]
        assert all(loop.now == 1.0 for loop in loops)
        assert scheduler.run(until=10.0) == 1
        assert order == ["early", "late"]

    def test_needs_at_least_one_loop(self):
        with pytest.raises(NetworkError):
            SerialShardScheduler([])


class TestShardRng:
    def test_derived_streams_replay_per_shard(self):
        first = ShardedHost(Host(EventLoop(), "b"), 3, rng=RngStreams(42))
        second = ShardedHost(Host(EventLoop(), "b"), 3, rng=RngStreams(42))
        for shard_a, shard_b in zip(first.shards, second.shards):
            draw_a = shard_a.rng.stream("loss").random()
            draw_b = shard_b.rng.stream("loss").random()
            assert draw_a == draw_b

    def test_shards_draw_distinct_streams(self):
        sharded = ShardedHost(Host(EventLoop(), "b"), 4, rng=RngStreams(7))
        draws = {
            shard.rng.stream("loss").random() for shard in sharded.shards
        }
        assert len(draws) == 4


class TestEndToEnd:
    def test_serial_sharded_delivery_exactly_once(self):
        path, sharded, counters = make_sharded(
            n_shards=4, pool_buffers=64, buffer_size=2048
        )
        n_flows, n_adus = 32, 2
        delivered: dict[int, list[bytes]] = {}
        receivers = []
        payloads = {
            fid: [adu_payload(1000 + 10 * fid + i) for i in range(n_adus)]
            for fid in range(n_flows)
        }
        for fid in range(n_flows):
            _, receiver = bind_flow(sharded, fid, delivered, zero_copy=True)
            receivers.append(receiver)
        for fid in range(n_flows):
            sharded.receive_burst(adu_packets(fid, payloads[fid]))
        sharded.drain()
        assert sharded.delivered_total == n_flows * n_adus
        for fid in range(n_flows):
            assert delivered[fid] == payloads[fid]
        # Every shard carried some of the load.
        spread = [shard.host.received for shard in sharded.shards]
        assert all(count > 0 for count in spread)
        snap = sharded.snapshot()
        assert snap["shards"] == 4
        assert snap["threaded"] is False
        assert len(snap["per_shard"]) == 4
        assert snap["demux"]["packets"] == n_flows * n_adus
        for receiver in receivers:
            receiver.close()
        reports = sharded.shutdown()
        assert reports == {0: [], 1: [], 2: [], 3: []}

    def test_shutdown_is_idempotent_and_unbinds_front(self):
        path, sharded, _ = make_sharded(n_shards=2)
        delivered: dict[int, list[bytes]] = {}
        _, receiver = bind_flow(sharded, 1, delivered)
        sharded.receive_burst(adu_packets(1, [adu_payload(5)]))
        sharded.drain()
        receiver.close()
        assert sharded.shutdown() == {0: [], 1: []}
        assert sharded.shutdown() == {0: [], 1: []}
        # The front no longer claims the protocol: late packets are
        # undeliverable at the front, not silently demuxed.
        before = path.b.undeliverable
        path.b.receive(adu_packets(1, [adu_payload(6)])[0])
        assert path.b.undeliverable == before + 1

    def test_threaded_sharded_delivery_exactly_once(self):
        front = Host(EventLoop(), "b")
        sharded = ShardedHost(
            front,
            2,
            rng=RngStreams(3),
            threaded=True,
            pool_buffers=128,
            buffer_size=2048,
            max_rows=1024,
            protocols=(),
            counters=ShardCounters(),
        )
        ack_rng = RngStreams(4)
        for shard in sharded.shards:
            sink = Host(shard.loop, "a")
            link = Link(
                shard.loop,
                ack_rng.stream(f"ack-{shard.index}"),
                name=f"b->a/{shard.index}",
            )
            link.connect(sink.receive)
            shard.host.add_link("a", link)
        n_flows = 64
        delivered: dict[int, list[bytes]] = {}
        payloads = {fid: [adu_payload(2000 + fid)] for fid in range(n_flows)}
        for fid in range(n_flows):
            bind_flow(sharded, fid, delivered, zero_copy=True)
        packets = [
            packet
            for fid in range(n_flows)
            for packet in adu_packets(fid, payloads[fid])
        ]
        sharded.receive_burst(packets)
        sharded.drain()
        assert sharded.delivered_total == n_flows
        for fid in range(n_flows):
            assert delivered[fid] == payloads[fid]
        reports = sharded.shutdown()
        assert reports == {0: [], 1: []}


class TestUplink:
    def test_linkless_host_forwards_through_uplink(self):
        path = two_hosts(seed=2)
        shard_host = Host(path.loop, "b", uplink=path.b)
        before = path.a.received
        shard_host.send(
            Packet(
                src="b", dst="a", protocol="noop", flow_id=1,
                header={}, payload=b"",
            )
        )
        path.loop.run(until=1.0)
        assert path.a.received == before + 1

    def test_no_link_and_no_uplink_raises(self):
        host = Host(EventLoop(), "b")
        with pytest.raises(NetworkError):
            host.send(
                Packet(
                    src="b", dst="nowhere", protocol="noop", flow_id=1,
                    header={}, payload=b"",
                )
            )
