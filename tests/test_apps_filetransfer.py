"""File transfer application."""

import pytest

from repro.apps.filetransfer import transfer_file
from repro.bench.workloads import file_payload
from repro.errors import ApplicationError
from repro.transport.alf import RecoveryMode


def test_clean_transfer(small_file):
    result = transfer_file(small_file, seed=1)
    assert result.ok
    assert result.received == small_file
    assert result.retransmissions == 0
    assert result.goodput_bps > 0
    assert result.adu_count == -(-len(small_file) // 4096)


def test_lossy_transfer_completes_exactly(small_file):
    result = transfer_file(small_file, loss_rate=0.05, seed=2)
    assert result.ok
    assert result.received == small_file
    assert result.retransmissions > 0


def test_out_of_order_placement_under_loss(small_file):
    result = transfer_file(small_file, loss_rate=0.05, seed=3)
    assert result.out_of_order_deliveries > 0
    assert result.max_reorder_buffer_bytes == 0  # placed directly


def test_no_placement_buffers(small_file):
    result = transfer_file(
        small_file, loss_rate=0.05, seed=3, placement_at_sender=False
    )
    assert result.ok
    assert result.max_reorder_buffer_bytes > 0


def test_recompute_recovery(small_file):
    result = transfer_file(
        small_file, loss_rate=0.05, seed=4,
        recovery=RecoveryMode.APP_RECOMPUTE,
    )
    assert result.ok
    assert result.recomputations > 0


def test_adu_size_validation():
    with pytest.raises(ApplicationError):
        transfer_file(b"data", adu_size=0)


def test_small_file_one_adu():
    data = file_payload(100, seed=5)
    result = transfer_file(data, adu_size=4096, seed=5)
    assert result.ok
    assert result.adu_count == 1


def test_reordering_path(small_file):
    result = transfer_file(small_file, reorder_rate=0.2, seed=6)
    assert result.ok
    assert result.received == small_file


def test_determinism(small_file):
    a = transfer_file(small_file, loss_rate=0.05, seed=7)
    b = transfer_file(small_file, loss_rate=0.05, seed=7)
    assert a.duration == b.duration
    assert a.retransmissions == b.retransmissions
