"""Integration: multiple flows, shared switches, windows, and seeds.

These tests drive several subsystems together the way the paper's
"future networks" section imagines — competing flows over shared
switching with finite queues — and sweep failure-mode seeds for the
data-integrity invariants.
"""

import pytest

from repro.bench.workloads import file_payload, octet_payload
from repro.core.adu import Adu
from repro.net.topology import hosts_via_switch, two_hosts
from repro.sim.metrics import MetricSampler
from repro.transport.alf import AlfReceiver, AlfSender, RecoveryMode
from repro.transport.tcpstyle import TcpStyleReceiver, TcpStyleSender


class TestCompetingTcpFlows:
    def test_two_flows_share_a_switch_and_both_finish(self):
        net = hosts_via_switch(["s1", "s2", "dst"], queue_capacity=16,
                               bandwidth_bps=10e6)
        payload = file_payload(80_000, seed=5)
        received = {1: bytearray(), 2: bytearray()}
        finished = []
        for flow in (1, 2):
            TcpStyleReceiver(
                net.loop, net.hosts["dst"], f"s{flow}", flow,
                deliver=received[flow].extend,
            )
        senders = []
        for flow in (1, 2):
            sender = TcpStyleSender(
                net.loop, net.hosts[f"s{flow}"], "dst", flow,
                on_complete=lambda f=flow: finished.append(f),
            )
            sender.send(payload)
            sender.close()
            senders.append(sender)
        net.loop.run(until=300)
        assert sorted(finished) == [1, 2]
        assert bytes(received[1]) == payload
        assert bytes(received[2]) == payload

    def test_congestion_loss_at_the_switch_is_recovered(self):
        """Two senders converge on one downlink with a tiny queue: the
        switch drops, AIMD plus retransmission repairs."""
        net = hosts_via_switch(["s1", "s2", "dst"], queue_capacity=4,
                               bandwidth_bps=5e6)
        payload = file_payload(60_000, seed=6)
        received = {1: bytearray(), 2: bytearray()}
        senders = []
        for flow in (1, 2):
            TcpStyleReceiver(
                net.loop, net.hosts["dst"], f"s{flow}", flow,
                deliver=received[flow].extend,
            )
            sender = TcpStyleSender(
                net.loop, net.hosts[f"s{flow}"], "dst", flow
            )
            sender.send(payload)
            sender.close()
            senders.append(sender)
        net.loop.run(until=600)
        assert bytes(received[1]) == payload
        assert bytes(received[2]) == payload
        assert net.switch.drops > 0
        assert sum(s.stats.retransmissions for s in senders) > 0


class TestAlfWindow:
    def test_window_limits_outstanding(self):
        path = two_hosts(seed=7, bandwidth_bps=5e6)
        AlfReceiver(path.loop, path.b, "a", 1, deliver=lambda d: None)
        sender = AlfSender(path.loop, path.a, "b", 1, max_outstanding=4)
        for index in range(20):
            sender.send_adu(Adu(index, octet_payload(2000, seed=index)))
        assert sender.outstanding_count <= 4
        assert sender.queued_count == 16
        sender.close()
        path.loop.run(until=60)
        assert sender.queued_count == 0
        assert sender.outstanding_count == 0

    def test_windowed_transfer_completes_under_loss(self):
        path = two_hosts(seed=8, loss_rate=0.05, bandwidth_bps=20e6)
        got = {}
        AlfReceiver(
            path.loop, path.b, "a", 1,
            deliver=lambda d: got.setdefault(d.sequence, d.payload),
            expected_adus=30,
        )
        finished = []
        sender = AlfSender(
            path.loop, path.a, "b", 1, max_outstanding=4,
            on_complete=lambda: finished.append(path.loop.now),
        )
        adus = [Adu(i, octet_payload(2000, seed=100 + i)) for i in range(30)]
        for adu in adus:
            sender.send_adu(adu)
        sender.close()
        path.loop.run(until=120)
        assert finished
        assert len(got) == 30
        assert all(got[a.sequence] == a.payload for a in adus)

    def test_window_bounds_retransmit_buffer(self):
        """The window is also a memory bound: at most W ADUs buffered."""
        path = two_hosts(seed=9, bandwidth_bps=1e6)
        sender = AlfSender(path.loop, path.a, "b", 1, max_outstanding=2)
        for index in range(10):
            sender.send_adu(Adu(index, bytes(1000)))
        assert sender.buffered_bytes <= 2 * 1000

    def test_validation(self):
        from repro.errors import TransportError

        path = two_hosts()
        with pytest.raises(TransportError):
            AlfSender(path.loop, path.a, "b", 1, max_outstanding=0)


class TestSeedSweep:
    """Data integrity holds across seeds and failure modes."""

    @pytest.mark.parametrize("seed", range(5))
    def test_tcp_integrity(self, seed):
        path = two_hosts(seed=seed, loss_rate=0.04, reorder_rate=0.04,
                         duplicate_rate=0.04, bandwidth_bps=50e6)
        payload = file_payload(30_000, seed=seed)
        received = bytearray()
        TcpStyleReceiver(path.loop, path.b, "a", 1, deliver=received.extend)
        sender = TcpStyleSender(path.loop, path.a, "b", 1)
        sender.send(payload)
        sender.close()
        path.loop.run(until=120)
        assert bytes(received) == payload

    @pytest.mark.parametrize("seed", range(5))
    def test_alf_integrity(self, seed):
        path = two_hosts(seed=seed, loss_rate=0.04, reorder_rate=0.04,
                         duplicate_rate=0.04, bandwidth_bps=50e6)
        got = {}
        AlfReceiver(
            path.loop, path.b, "a", 1,
            deliver=lambda d: got.setdefault(d.sequence, d.payload),
            expected_adus=15,
        )
        sender = AlfSender(path.loop, path.a, "b", 1)
        adus = [
            Adu(i, octet_payload(3000, seed=1000 * seed + i))
            for i in range(15)
        ]
        for adu in adus:
            sender.send_adu(adu)
        sender.close()
        path.loop.run(until=120)
        assert len(got) == 15
        assert all(got[a.sequence] == a.payload for a in adus)


class TestMetricsIntegration:
    def test_sampling_a_live_transfer(self):
        path = two_hosts(seed=10, loss_rate=0.03, bandwidth_bps=20e6)
        received = bytearray()
        receiver = TcpStyleReceiver(
            path.loop, path.b, "a", 1, deliver=received.extend
        )
        sender = TcpStyleSender(path.loop, path.a, "b", 1)
        sampler = MetricSampler(path.loop, period=0.005)
        blocked = sampler.watch("blocked", lambda: receiver.blocked_bytes)
        inflight = sampler.watch("inflight", lambda: sender.unacked_bytes)
        sampler.start()
        payload = file_payload(100_000, seed=10)
        sender.send(payload)
        sender.close()
        path.loop.run(until=0.5)
        sampler.stop()
        path.loop.run(until=120)
        assert bytes(received) == payload
        assert inflight.max > 0
        assert blocked.max > 0  # the stall, caught in the act
