"""The complete receiving end system (network + machine model)."""

import pytest

from repro.core.adu import Adu
from repro.core.endsystem import AlfEndSystem
from repro.machine.profile import MIPS_R2000
from repro.net.topology import two_hosts
from repro.stages.checksum import ChecksumVerifyStage
from repro.stages.copy import CopyStage
from repro.transport.alf import AlfSender


def stage_two_factory(adu):
    verify = ChecksumVerifyStage()
    verify.expect(adu.checksum)
    return [verify, CopyStage(name="move", category="application")]


def run_transfer(integrated, n_adus=30, loss_rate=0.0, seed=1,
                 bandwidth=400e6):
    path = two_hosts(seed=seed, loss_rate=loss_rate, bandwidth_bps=bandwidth,
                     propagation_delay=0.002, reverse_loss_rate=0.0)
    end_system = AlfEndSystem(
        path.loop, path.b, "a", 1,
        machine=MIPS_R2000,
        stage_two=stage_two_factory,
        integrated=integrated,
        expected_adus=n_adus,
    )
    sender = AlfSender(path.loop, path.a, "b", 1, rto=0.05)
    adus = [Adu(i, bytes(4096), {"offset": i}) for i in range(n_adus)]
    for adu in adus:
        sender.send_adu(adu)
    sender.close()
    path.loop.run(until=60)
    return end_system


def test_processes_every_adu():
    end_system = run_transfer(integrated=True)
    assert end_system.stats.adus_processed == 30
    assert end_system.stats.payload_bytes == 30 * 4096
    assert end_system.stats.processing_failures == 0
    assert end_system.receiver.complete


def test_cycles_accumulate():
    end_system = run_transfer(integrated=True, n_adus=5)
    expected_one = MIPS_R2000.cycles
    assert end_system.stats.total_cycles > 0
    # Five identical ADUs: cycles divide evenly.
    per_adu = end_system.stats.total_cycles / 5
    assert per_adu == pytest.approx(end_system.stats.total_cycles / 5)


def test_integrated_finishes_sooner():
    layered = run_transfer(integrated=False)
    integrated = run_transfer(integrated=True)
    assert integrated.completion_time < layered.completion_time
    assert integrated.stats.total_cycles < layered.stats.total_cycles


def test_completion_time_zero_before_any_work():
    path = two_hosts(seed=1)
    end_system = AlfEndSystem(
        path.loop, path.b, "a", 1,
        machine=MIPS_R2000, stage_two=stage_two_factory,
    )
    assert end_system.completion_time == 0.0


def test_goodput_helper():
    end_system = run_transfer(integrated=True)
    elapsed = end_system.completion_time
    assert end_system.stats.goodput_bps(elapsed) > 0
    assert end_system.stats.goodput_bps(0) == 0.0


def test_survives_loss():
    end_system = run_transfer(integrated=True, loss_rate=0.05, seed=3)
    assert end_system.stats.adus_processed == 30


def test_e7_shape():
    from repro.bench.experiments import ilp_end_to_end

    result = ilp_end_to_end(n_adus=60)
    speedup = result.measured("end-to-end ILP speedup")
    assert 1.3 < speedup < 2.2
    layered_util = result.row("goodput, layered receive path").extra[
        "cpu_utilization"
    ]
    assert layered_util > 0.8  # the CPU, not the network, is the bottleneck
