"""Every experiment is a pure function of its arguments.

Reproducibility is the product here: running an experiment twice must
give bit-identical measured values (all randomness flows through seeded
streams, and nothing reads wall-clock time).
"""

import pytest

from repro.bench import experiments

CHEAP_EXPERIMENTS = [
    experiments.table1,
    experiments.ilp_copy_checksum,
    experiments.presentation_cost,
    experiments.stack_overhead,
    experiments.ilp_presentation_checksum,
    experiments.word_fusion,
    experiments.adu_size_survival,
    experiments.ilp_scaling,
    experiments.parallel_dispatch,
    experiments.ordering_constraints,
    experiments.header_overhead,
    experiments.cache_depletion,
    experiments.sync_unit_overhead,
]


@pytest.mark.parametrize(
    "runner", CHEAP_EXPERIMENTS, ids=lambda fn: fn.__name__
)
def test_experiment_is_deterministic(runner):
    first = runner()
    second = runner()
    assert [row.label for row in first.rows] == [
        row.label for row in second.rows
    ]
    for row_a, row_b in zip(first.rows, second.rows):
        assert row_a.measured == row_b.measured, row_a.label
        assert row_a.extra == row_b.extra, row_a.label


def test_simulation_experiments_deterministic_too():
    """The event-loop experiments share the property (spot check)."""
    first = experiments.control_vs_manipulation(n_segments=40)
    second = experiments.control_vs_manipulation(n_segments=40)
    for row_a, row_b in zip(first.rows, second.rows):
        assert row_a.measured == row_b.measured


def test_seed_changes_change_results():
    """Seeds are real: different seeds give different simulations."""
    a = experiments.adu_size_survival(adu_sizes=(8192,), seed=1, n_trials=100)
    b = experiments.adu_size_survival(adu_sizes=(8192,), seed=2, n_trials=100)
    # Values may coincide by chance for tiny trials; the full row sets
    # should not be all-identical across several sizes.
    c = experiments.adu_size_survival(
        adu_sizes=(2048, 8192, 65536), seed=1, n_trials=100
    )
    d = experiments.adu_size_survival(
        adu_sizes=(2048, 8192, 65536), seed=2, n_trials=100
    )
    assert [r.measured for r in c.rows] != [r.measured for r in d.rows]
