"""ADUs: fragmentation and reassembly invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adu import Adu, AduFragment, fragment_adu, reassemble_fragments
from repro.errors import FramingError


def test_adu_basics():
    adu = Adu(3, b"payload", {"offset": 12})
    assert len(adu) == 7
    assert adu.checksum == Adu(0, b"payload").checksum


def test_negative_sequence_rejected():
    with pytest.raises(FramingError):
        Adu(-1, b"")


def test_fragmentation_counts():
    adu = Adu(0, bytes(2500))
    fragments = fragment_adu(adu, mtu=1000)
    assert len(fragments) == 3
    assert [f.index for f in fragments] == [0, 1, 2]
    assert all(f.total == 3 for f in fragments)
    assert all(f.adu_length == 2500 for f in fragments)


def test_empty_adu_single_fragment():
    fragments = fragment_adu(Adu(0, b""), mtu=100)
    assert len(fragments) == 1
    assert fragments[0].payload == b""


def test_bad_mtu():
    with pytest.raises(FramingError):
        fragment_adu(Adu(0, b"x"), mtu=0)


def test_fragments_carry_name():
    adu = Adu(5, bytes(100), {"frame": 2, "slot": 7})
    for fragment in fragment_adu(adu, mtu=40):
        assert fragment.name == {"frame": 2, "slot": 7}


def test_reassembly_any_order():
    adu = Adu(1, bytes(range(250)), {"k": "v"})
    fragments = fragment_adu(adu, mtu=64)
    rebuilt = reassemble_fragments(list(reversed(fragments)))
    assert rebuilt.payload == adu.payload
    assert rebuilt.sequence == 1
    assert rebuilt.name == {"k": "v"}


def test_missing_fragment_detected():
    fragments = fragment_adu(Adu(0, bytes(300)), mtu=100)
    with pytest.raises(FramingError, match="have 2 of 3"):
        reassemble_fragments(fragments[:2])


def test_duplicate_fragment_detected():
    fragments = fragment_adu(Adu(0, bytes(200)), mtu=100)
    with pytest.raises(FramingError, match="duplicate"):
        reassemble_fragments([fragments[0], fragments[0]])


def test_mixed_adus_detected():
    a = fragment_adu(Adu(0, bytes(200)), mtu=100)
    b = fragment_adu(Adu(1, bytes(200)), mtu=100)
    with pytest.raises(FramingError, match="inconsistent"):
        reassemble_fragments([a[0], b[1]])


def test_corrupted_payload_detected():
    fragments = fragment_adu(Adu(0, bytes(200)), mtu=100)
    forged = AduFragment(
        adu_sequence=0,
        index=1,
        total=2,
        adu_length=200,
        adu_checksum=fragments[0].adu_checksum,
        name={},
        payload=b"\xff" * 100,
    )
    with pytest.raises(FramingError, match="checksum"):
        reassemble_fragments([fragments[0], forged])


def test_empty_fragment_list():
    with pytest.raises(FramingError):
        reassemble_fragments([])


def test_fragment_index_validation():
    with pytest.raises(FramingError):
        AduFragment(0, 5, 3, 10, 0, {}, b"")


@settings(max_examples=60, deadline=None)
@given(
    st.binary(min_size=0, max_size=2000),
    st.integers(min_value=1, max_value=500),
)
def test_fragment_reassemble_roundtrip(payload, mtu):
    adu = Adu(7, payload, {"len": len(payload)})
    fragments = fragment_adu(adu, mtu)
    assert all(len(f.payload) <= mtu for f in fragments)
    rebuilt = reassemble_fragments(fragments)
    assert rebuilt.payload == payload
    assert rebuilt.name == adu.name


def test_fragment_with_precomputed_checksum():
    # A caller that already checksummed (e.g. through a compiled wire
    # plan) passes the value in; the fragments carry it verbatim and no
    # second checksum pass runs here.
    adu = Adu(3, bytes(range(100)))
    fragments = fragment_adu(adu, mtu=40, checksum=0x1234)
    assert all(f.adu_checksum == 0x1234 for f in fragments)
    # The default still derives it from the payload.
    assert fragment_adu(adu, mtu=40)[0].adu_checksum == adu.checksum


def test_reassemble_without_verify_skips_checksum():
    fragments = fragment_adu(Adu(0, bytes(200)), mtu=100, checksum=0xBAD)
    # verify=True rejects the mismatch...
    with pytest.raises(FramingError, match="checksum"):
        reassemble_fragments(fragments)
    # ...verify=False defers it to the caller's own (compiled) pass,
    # while the structural checks all still run.
    adu = reassemble_fragments(fragments, verify=False)
    assert adu.payload == bytes(200)
    with pytest.raises(FramingError, match="have 1 of 2"):
        reassemble_fragments(fragments[:1], verify=False)
