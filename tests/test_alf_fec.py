"""ADU-level FEC (footnote 10)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adu import Adu
from repro.errors import FramingError
from repro.transport.alf.fec import (
    FecDecoder,
    encode_with_parity,
    survival_probability,
)


def make_adu(size=5000, seed=1):
    rng = random.Random(seed)
    return Adu(0, rng.randbytes(size), {"k": seed})


class TestEncoding:
    def test_unit_counts(self):
        units = encode_with_parity(make_adu(5000), mtu=500, group_size=4)
        data_units = [u for u in units if not u.is_parity]
        parity_units = [u for u in units if u.is_parity]
        assert len(data_units) == 10
        assert len(parity_units) == 3  # groups of 4, 4, 2

    def test_group_size_validation(self):
        with pytest.raises(FramingError):
            encode_with_parity(make_adu(), mtu=500, group_size=0)

    def test_parity_marked_in_name(self):
        units = encode_with_parity(make_adu(), mtu=500, group_size=4)
        parity = [u for u in units if u.is_parity][0]
        assert "fec_parity" in parity.fragment.name


class TestDecoding:
    def test_no_loss(self):
        adu = make_adu()
        decoder = FecDecoder(mtu=500)
        for unit in encode_with_parity(adu, mtu=500, group_size=4):
            decoder.add(unit)
        result = decoder.try_reassemble()
        assert result is not None and result.payload == adu.payload
        assert decoder.recovered_fragments == 0

    def test_one_loss_per_group_recovered(self):
        adu = make_adu()
        units = encode_with_parity(adu, mtu=500, group_size=4)
        decoder = FecDecoder(mtu=500)
        dropped_groups = set()
        for unit in units:
            if not unit.is_parity and unit.group not in dropped_groups:
                dropped_groups.add(unit.group)
                continue
            decoder.add(unit)
        result = decoder.try_reassemble()
        assert result is not None and result.payload == adu.payload
        assert decoder.recovered_fragments == len(dropped_groups)

    def test_lost_parity_is_harmless(self):
        adu = make_adu()
        decoder = FecDecoder(mtu=500)
        for unit in encode_with_parity(adu, mtu=500, group_size=4):
            if not unit.is_parity:
                decoder.add(unit)
        result = decoder.try_reassemble()
        assert result is not None and result.payload == adu.payload

    def test_two_losses_in_group_unrecoverable(self):
        adu = make_adu()
        units = encode_with_parity(adu, mtu=500, group_size=4)
        decoder = FecDecoder(mtu=500)
        skipped = 0
        for unit in units:
            if not unit.is_parity and unit.group == 0 and skipped < 2:
                skipped += 1
                continue
            decoder.add(unit)
        assert decoder.try_reassemble() is None

    def test_tail_fragment_recovery_trims_padding(self):
        """The last fragment is shorter than the MTU; its reconstruction
        must trim the XOR padding."""
        adu = make_adu(size=1234)  # 500+500+234
        units = encode_with_parity(adu, mtu=500, group_size=4)
        decoder = FecDecoder(mtu=500)
        for unit in units:
            if not unit.is_parity and unit.fragment.index == 2:
                continue  # drop the short tail fragment
            decoder.add(unit)
        result = decoder.try_reassemble()
        assert result is not None and result.payload == adu.payload

    def test_empty_decoder(self):
        assert FecDecoder(mtu=100).try_reassemble() is None

    def test_mtu_validation(self):
        with pytest.raises(FramingError):
            FecDecoder(mtu=0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4000),
        st.integers(min_value=1, max_value=6),
        st.randoms(use_true_random=False),
    )
    def test_random_single_loss_patterns(self, size, group_size, rng):
        adu = Adu(0, bytes(rng.getrandbits(8) for _ in range(size)))
        units = encode_with_parity(adu, mtu=300, group_size=group_size)
        # Drop at most one data unit per group.
        decoder = FecDecoder(mtu=300)
        dropped = set()
        for unit in units:
            if (
                not unit.is_parity
                and unit.group not in dropped
                and rng.random() < 0.5
            ):
                dropped.add(unit.group)
                continue
            decoder.add(unit)
        result = decoder.try_reassemble()
        assert result is not None and result.payload == adu.payload


class TestSurvivalMath:
    def test_fec_always_helps(self):
        for n in (10, 100, 1000):
            plain = survival_probability(n, 1e-3, None)
            fec = survival_probability(n, 1e-3, 8)
            assert fec > plain

    def test_no_loss_is_certain(self):
        assert survival_probability(100, 0.0, None) == 1.0
        assert survival_probability(100, 0.0, 4) == 1.0

    def test_plain_matches_power(self):
        assert survival_probability(50, 0.01, None) == pytest.approx(0.99**50)

    def test_smaller_groups_survive_better(self):
        loose = survival_probability(1000, 1e-3, 16)
        tight = survival_probability(1000, 1e-3, 4)
        assert tight > loose
