"""F5 — ADU survival with transmission-unit FEC (footnote 10).

Times the real encode → drop → decode cycle for a 187-cell ADU and
asserts that parity groups rescue ADU sizes plain fragmentation loses.
"""

import pytest

from repro.bench import experiments
from repro.bench.workloads import octet_payload
from repro.core.adu import Adu
from repro.sim.rng import RngStreams
from repro.transport.alf.fec import FecDecoder, encode_with_parity


@pytest.fixture(scope="module")
def result():
    return experiments.fec_survival(n_trials=150)


def test_bench_fec_roundtrip_with_loss(benchmark, result, report):
    adu = Adu(0, octet_payload(8192))
    rng = RngStreams(5).stream("bench-fec")

    def roundtrip():
        decoder = FecDecoder(mtu=44)
        for unit in encode_with_parity(adu, mtu=44, group_size=8):
            if rng.random() >= 1e-3:
                decoder.add(unit)
        return decoder.try_reassemble()

    reassembled = benchmark(roundtrip)
    # A specific draw may lose >1 unit in a group; the shape test below
    # covers the statistics.
    assert reassembled is None or reassembled.payload == adu.payload
    report(result)


def test_shape(result):
    assert result.measured("ADU 65536 B plain") < 0.4
    assert result.measured("ADU 65536 B FEC(k=8)") > 0.9
