"""P1 — the compiled fast path's wall-clock case.

Three engineerings of the same steady-state wire path (copy + checksum +
word-XOR + byteswap over 64 ADUs):

* **replan** — rebuild the fusion plan for every ADU, then run it: the
  naive hot path where planning is per-ADU work.
* **cached** — compile once through the LRU plan cache, run per ADU.
* **batched** — one :meth:`CompiledPlan.run_batch` call packing all ADUs
  into a single word array: one vectorized pass per kernel.

Unlike the bit-reproducible P1 battery entry (``repro run P1``), this
file is allowed to measure real time; it asserts the PR's acceptance
criterion — cached+batched at least 5x the ops/sec of per-ADU
re-planning at batch 64 — with byte-identical outputs and identical
checksum observations, and emits a machine-readable JSON record.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.ilp.compiler import PipelineCompiler, PlanCache
from repro.ilp.pipeline import Pipeline
from repro.machine.profile import MIPS_R2000
from repro.bench.workloads import octet_payload
from repro.stages.checksum import ChecksumComputeStage
from repro.stages.copy import CopyStage
from repro.stages.encrypt import WordXorStage
from repro.stages.presentation import ByteswapStage

N_ADUS = 64
ADU_BYTES = 2048
REPEATS = 5

WIRE_CHECKSUM = "checksum-internet"


def make_pipeline() -> Pipeline:
    return Pipeline(
        [
            CopyStage(),
            ChecksumComputeStage(),
            WordXorStage(0xA5A5A5A5),
            ByteswapStage(),
        ],
        name="wire",
    )


def make_adus() -> list[bytes]:
    return [octet_payload(ADU_BYTES, seed=900 + i) for i in range(N_ADUS)]


def run_replan(adus: list[bytes]):
    compiler = PipelineCompiler(MIPS_R2000)
    outputs, checksums = [], []
    for payload in adus:
        plan = compiler.compile(make_pipeline())
        output, observations = plan.run(payload)
        outputs.append(output)
        checksums.append(observations[WIRE_CHECKSUM])
    return outputs, checksums


def run_cached(adus: list[bytes], cache: PlanCache):
    outputs, checksums = [], []
    for payload in adus:
        plan = cache.get_or_compile(make_pipeline(), MIPS_R2000)
        output, observations = plan.run(payload)
        outputs.append(output)
        checksums.append(observations[WIRE_CHECKSUM])
    return outputs, checksums


def run_batched(adus: list[bytes], cache: PlanCache):
    plan = cache.get_or_compile(make_pipeline(), MIPS_R2000)
    batch = plan.run_batch(adus)
    return batch.outputs, batch.observations[WIRE_CHECKSUM], batch.report


def best_of(fn, *args) -> float:
    """Min elapsed over REPEATS runs — the least-noisy wall-clock figure."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def record():
    adus = make_adus()
    cache = PlanCache(capacity=8)

    replan_outputs, replan_checksums = run_replan(adus)
    cached_outputs, cached_checksums = run_cached(adus, cache)
    batch_outputs, batch_checksums, batch_report = run_batched(adus, cache)

    # The three engineerings are alternative schedules of one
    # computation: outputs and observations must be identical.
    assert cached_outputs == replan_outputs
    assert batch_outputs == replan_outputs
    assert cached_checksums == replan_checksums
    assert batch_checksums == replan_checksums

    replan_s = best_of(run_replan, adus)
    cached_s = best_of(run_cached, adus, cache)
    batched_s = best_of(run_batched, adus, cache)

    return {
        "n_adus": N_ADUS,
        "adu_bytes": ADU_BYTES,
        "replan_ops_per_s": N_ADUS / replan_s,
        "cached_ops_per_s": N_ADUS / cached_s,
        "batched_ops_per_s": N_ADUS / batched_s,
        "cached_speedup": replan_s / cached_s,
        "batched_speedup": replan_s / batched_s,
        "modelled_mbps_batched": batch_report.mbps(),
        "cache_hit_rate": cache.stats.hit_rate,
    }


def test_bench_plan_cache_batched(benchmark, record, report):
    adus = make_adus()
    cache = PlanCache(capacity=8)
    run_batched(adus, cache)  # warm the cache outside the timed region
    benchmark(lambda: run_batched(adus, cache))

    from repro.bench import experiments

    report(experiments.plan_cache_fast_path())
    print("PLAN_CACHE_JSON " + json.dumps(record, sort_keys=True))


def test_acceptance_batched_speedup(record):
    # The PR's headline claim: compile-once + batched execution beats
    # per-ADU re-planning by at least 5x at batch 64.
    assert record["batched_speedup"] >= 5.0
    # Caching alone must already pay for itself.
    assert record["cached_speedup"] > 1.0
    assert record["cache_hit_rate"] > 0.9
