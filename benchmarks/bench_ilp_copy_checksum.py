"""E1 — separate vs integrated copy+checksum (paper §4: ~60 vs 90 Mb/s).

The benchmark times both executor paths over the real stages; the shape
assertions pin the paper's result: one fused loop beats two passes by
~1.5x on the R2000.
"""

import pytest

from repro.bench import experiments
from repro.bench.workloads import PACKET_BYTES, octet_payload
from repro.ilp.executor import IntegratedExecutor, LayeredExecutor
from repro.ilp.pipeline import Pipeline
from repro.machine.profile import MIPS_R2000
from repro.stages.checksum import ChecksumComputeStage
from repro.stages.copy import CopyStage


@pytest.fixture(scope="module")
def result():
    return experiments.ilp_copy_checksum()


@pytest.fixture(scope="module")
def payload():
    return octet_payload(PACKET_BYTES)


def make_pipeline():
    return Pipeline([CopyStage(), ChecksumComputeStage()], name="copy+csum")


def test_bench_layered(benchmark, payload, result, report):
    executor = LayeredExecutor(MIPS_R2000)
    out, _ = benchmark(executor.execute, make_pipeline(), payload)
    assert out == payload
    report(result)


def test_bench_integrated(benchmark, payload):
    executor = IntegratedExecutor(MIPS_R2000)
    out, _ = benchmark(executor.execute, make_pipeline(), payload)
    assert out == payload


def test_shape_matches_paper(result):
    separate = result.measured("MIPS R2000 separate")
    integrated = result.measured("MIPS R2000 integrated")
    assert separate == pytest.approx(60.0, rel=0.05)
    assert integrated == pytest.approx(90.0, rel=0.02)
    assert 1.3 < integrated / separate < 1.6
