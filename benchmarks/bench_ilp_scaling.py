"""F3 — ILP speedup vs number of fused stages (paper §4/§6).

"The effect would be much more beneficial if several of the necessary
manipulation steps were combined" — and more so on superscalar machines.
The benchmark times the 5-stage pipeline both ways.
"""

import pytest

from repro.bench import experiments
from repro.bench.experiments import _receive_stage_list
from repro.bench.workloads import PACKET_BYTES, octet_payload
from repro.ilp.executor import IntegratedExecutor, LayeredExecutor
from repro.ilp.pipeline import Pipeline
from repro.machine.profile import MIPS_R2000


@pytest.fixture(scope="module")
def result():
    return experiments.ilp_scaling()


@pytest.fixture(scope="module")
def payload():
    return octet_payload(PACKET_BYTES)


def test_bench_five_stage_layered(benchmark, payload, result, report):
    executor = LayeredExecutor(MIPS_R2000)
    benchmark(executor.execute, Pipeline(_receive_stage_list(5)), payload)
    report(result)


def test_bench_five_stage_integrated(benchmark, payload):
    executor = IntegratedExecutor(MIPS_R2000)
    benchmark(executor.execute, Pipeline(_receive_stage_list(5)), payload)


def test_shape_matches_paper(result):
    r2000 = [row.measured for row in result.rows if row.label.startswith("MIPS")]
    assert r2000 == sorted(r2000)  # monotone in fused depth
    assert r2000[-1] > 1.5
    assert result.measured("Superscalar (extrapolated) 5 stages") > result.measured(
        "MIPS R2000 5 stages"
    )
