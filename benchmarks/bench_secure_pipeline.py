"""Full §6 secure pipeline — wall-clock, pass counts, batched drain.

Two engineerings of the complete sender/receiver manipulation set
(presentation conversion + encryption + checksum), measured on real
time:

* **layered** — the interpreted recursive codec walk, then a separate
  cipher pass, then a separate checksum pass: three full traversals of
  every ADU outbound, and three more (verify, decrypt, convert back)
  inbound.
* **compiled-fused** — the sender compiles ``[convert, encrypt,
  checksum]`` and the receiver ``[checksum, decrypt, convert]``; each
  direction is one integrated read pass (the checksum covers the
  ciphertext, so the receiver verifies before decrypting).

Wire bytes, checksums and the decrypted round trip are asserted
byte-identical between the two.  The one-read-pass claim is verified per
direction against :func:`repro.machine.accounting.datapath_counters` —
measured, not asserted.  A second section drains a 64-ADU reassembly
queue through :meth:`AlfReceiver.run_batch` (one vectorized plan
dispatch) against the per-ADU verify loop.  Emits a machine-readable
JSON record (``SECURE_PIPELINE_JSON`` line and
``benchmarks/out/bench_secure_pipeline.json``) for the CI artifact.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from repro.bench import experiments
from repro.bench.workloads import integer_array
from repro.buffers.chain import BufferChain
from repro.buffers.segment import Segment
from repro.core.adu import Adu, fragment_adu
from repro.ilp.compiler import PlanCache
from repro.machine.accounting import datapath_counters
from repro.machine.profile import MIPS_R2000
from repro.net.packet import Packet
from repro.net.topology import two_hosts
from repro.presentation.abstract import ArrayOf, Int32
from repro.presentation.compiler import CodecCache
from repro.presentation.lwts import LwtsCodec
from repro.stages.checksum import internet_checksum
from repro.stages.encrypt import WordXorStage
from repro.stages.presentation import PresentationConvertStage
from repro.transport.alf import AlfReceiver, AlfSender
from repro.transport.alf.receiver import PROTOCOL
from repro.transport.alf.sender import wire_pipeline

N_INTEGERS = 1024
N_ADUS = 64
KEY = 0x5A5AC3D2
SCHEMA = ArrayOf(Int32(), fixed_count=N_INTEGERS)
LOCAL = LwtsCodec(byte_order="little")
WIRE = LwtsCodec(byte_order="big")

OUT_DIR = Path(__file__).resolve().parent / "out"


@pytest.fixture(scope="module")
def payloads():
    values = [integer_array(N_INTEGERS, seed=90 + i) for i in range(N_ADUS)]
    return [LOCAL.encode(value, SCHEMA) for value in values]


# ----------------------------------------------------------------------
# Engineering 1: layered — walk, cipher pass, checksum pass, and back.


def run_layered_send(payloads: list[bytes]) -> tuple[list[bytes], list[int]]:
    cipher = WordXorStage(KEY)
    wire = []
    checksums = []
    for payload in payloads:
        value = LOCAL.decode(payload, SCHEMA)
        converted = WIRE.encode(value, SCHEMA)
        ciphertext = cipher.apply(converted)
        wire.append(ciphertext)
        checksums.append(internet_checksum(ciphertext))
    return wire, checksums


def run_layered_receive(
    wire: list[bytes], checksums: list[int]
) -> list[bytes]:
    cipher = WordXorStage(KEY)
    back = []
    for ciphertext, checksum in zip(wire, checksums):
        assert internet_checksum(ciphertext) == checksum
        converted = cipher.apply(ciphertext)
        value = WIRE.decode(converted, SCHEMA)
        back.append(LOCAL.encode(value, SCHEMA))
    return back


# ----------------------------------------------------------------------
# Engineering 2: compiled-fused — one plan per direction.


def make_plans(plan_cache: PlanCache, codec_cache: CodecCache):
    sender = plan_cache.get_or_compile(
        wire_pipeline(
            PresentationConvertStage(
                SCHEMA, LOCAL, WIRE, codec_cache=codec_cache
            ),
            encrypt=WordXorStage(KEY, name="encrypt"),
        ),
        MIPS_R2000,
    )
    receiver = plan_cache.get_or_compile(
        wire_pipeline(
            PresentationConvertStage(
                SCHEMA, WIRE, LOCAL, codec_cache=codec_cache
            ),
            convert_after=True,
            encrypt=WordXorStage(KEY, name="decrypt"),
        ),
        MIPS_R2000,
    )
    return sender, receiver


def run_fused_send(plan, payloads: list[bytes]) -> tuple[list[bytes], list[int]]:
    wire = []
    checksums = []
    for payload in payloads:
        output, observations = plan.run(payload)
        wire.append(output)
        checksums.append(observations["checksum-internet"])
    return wire, checksums


def run_fused_receive(plan, wire: list[bytes], checksums: list[int]) -> list[bytes]:
    back = []
    for ciphertext, checksum in zip(wire, checksums):
        output, observations = plan.run(ciphertext)
        assert observations["checksum-internet"] == checksum
        back.append(output)
    return back


def best_of(fn, repeats: int = 5) -> tuple[float, object]:
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


# ----------------------------------------------------------------------
# Receive-side drain: run_batch vs per-ADU verification.

DRAIN_MTU = 1024


def make_fragment_packets(payloads: list[bytes]) -> list[Packet]:
    """The arrival stream a reassembling receiver sees: every fragment
    of every ADU, ciphertext on the wire, checksummed over the
    ciphertext (what an encrypting ``AlfSender`` emits)."""
    cipher = WordXorStage(KEY)
    packets = []
    for sequence, payload in enumerate(payloads):
        ciphertext = cipher.apply(payload)
        checksum = internet_checksum(ciphertext)
        adu = Adu(sequence=sequence, payload=ciphertext, name={"i": sequence})
        for fragment in fragment_adu(adu, DRAIN_MTU, checksum=checksum):
            packets.append(
                Packet(
                    src="a",
                    dst="b",
                    protocol=PROTOCOL,
                    flow_id=1,
                    header=AlfSender._fragment_header(fragment),
                    payload=fragment.payload,
                )
            )
    return packets


def make_receiver(batch_drain: bool):
    """A receiver fed synthetically (the loop is never run, so the
    zero-delay auto-drain stays queued and ``run_batch`` is explicit)."""
    path = two_hosts(seed=5)
    delivered: dict[int, bytes] = {}
    receiver = AlfReceiver(
        path.loop,
        path.b,
        "a",
        1,
        deliver=lambda d: delivered.__setitem__(d.sequence, d.payload),
        zero_copy=False,
        encryption=KEY,
        batch_drain=batch_drain,
    )
    return receiver, delivered


def drain_per_adu(packets: list[Packet]) -> dict[int, bytes]:
    receiver, delivered = make_receiver(batch_drain=False)
    for packet in packets:
        receiver._on_fragment(packet)
    return delivered


def drain_batched(packets: list[Packet]) -> dict[int, bytes]:
    receiver, delivered = make_receiver(batch_drain=True)
    for packet in packets:
        receiver._on_fragment(packet)
    drained = receiver.run_batch()
    assert drained == len(delivered)
    assert receiver.batch_drains == 1
    assert receiver.batch_drained_adus == N_ADUS
    return delivered


@pytest.fixture(scope="module")
def record(payloads):
    total_bytes = sum(len(p) for p in payloads)
    plan_cache = PlanCache(capacity=8)
    codec_cache = CodecCache()
    sender_plan, receiver_plan = make_plans(plan_cache, codec_cache)
    assert len(sender_plan.groups) == 1, "sender stages did not fuse"
    assert len(receiver_plan.groups) == 1, "receiver stages did not fuse"

    layered_s, (layered_wire, layered_sums) = best_of(
        lambda: run_layered_send(payloads)
    )
    layered_rx_s, layered_back = best_of(
        lambda: run_layered_receive(layered_wire, layered_sums)
    )
    fused_s, (fused_wire, fused_sums) = best_of(
        lambda: run_fused_send(sender_plan, payloads)
    )
    fused_rx_s, fused_back = best_of(
        lambda: run_fused_receive(receiver_plan, fused_wire, fused_sums)
    )
    assert fused_wire == layered_wire, "fused wire bytes diverged"
    assert fused_sums == layered_sums, "fused checksum diverged"
    assert layered_back == payloads and fused_back == payloads

    # One-read-pass verification, per direction: feed multi-segment
    # arrival chains and count gather traversals on the counters.
    counters = datapath_counters()

    def chain_passes(plan, units: list[bytes]) -> float:
        counters.reset()
        for unit in units:
            half = (len(unit) // 2) & ~3
            chain = BufferChain(
                [Segment.wrap(unit[:half]), Segment.wrap(unit[half:])]
            )
            output, _ = plan.run_chain(chain)
            if isinstance(output, BufferChain):
                output.release()
        snap = counters.snapshot()
        counters.reset()
        gathered = snap["copies_by_label"].get("gather-words", 0)
        return gathered / sum(len(unit) for unit in units)

    send_passes = chain_passes(sender_plan, payloads)
    recv_passes = chain_passes(receiver_plan, layered_wire)

    # Receive-side drain: one vectorized run_batch over the 64-ADU
    # queue against the per-ADU verify loop.
    packets = make_fragment_packets(payloads)
    per_adu_s, per_adu_out = best_of(lambda: drain_per_adu(packets))
    batch_s, batch_out = best_of(lambda: drain_batched(packets))
    expected = dict(enumerate(payloads))
    assert per_adu_out == expected, "per-ADU drain diverged"
    assert batch_out == expected, "batched drain diverged"

    round_trip_layered = layered_s + layered_rx_s
    round_trip_fused = fused_s + fused_rx_s
    return {
        "n_adus": N_ADUS,
        "adu_bytes": 4 * N_INTEGERS,
        "total_bytes": total_bytes,
        "layered": {
            "send_wall_s": layered_s,
            "receive_wall_s": layered_rx_s,
            "round_trip_wall_s": round_trip_layered,
            "mb_per_s": 2 * total_bytes / round_trip_layered / 1e6,
        },
        "compiled_fused": {
            "send_wall_s": fused_s,
            "receive_wall_s": fused_rx_s,
            "round_trip_wall_s": round_trip_fused,
            "mb_per_s": 2 * total_bytes / round_trip_fused / 1e6,
        },
        "speedup": round_trip_layered / round_trip_fused,
        "send_read_passes_per_adu": send_passes,
        "receive_read_passes_per_adu": recv_passes,
        "batch_drain": {
            "mtu": DRAIN_MTU,
            "per_adu_wall_s": per_adu_s,
            "batch_wall_s": batch_s,
            "speedup": per_adu_s / batch_s,
        },
    }


def test_bench_fused_secure(benchmark, record, payloads):
    plan_cache = PlanCache(capacity=8)
    codec_cache = CodecCache()
    sender_plan, receiver_plan = make_plans(plan_cache, codec_cache)

    def round_trip():
        wire, sums = run_fused_send(sender_plan, payloads)
        return run_fused_receive(receiver_plan, wire, sums)

    benchmark(round_trip)

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    out = OUT_DIR / "bench_secure_pipeline.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print("SECURE_PIPELINE_JSON " + json.dumps(record, sort_keys=True))


def test_bench_layered_secure(benchmark, payloads):
    def round_trip():
        wire, sums = run_layered_send(payloads)
        return run_layered_receive(wire, sums)

    benchmark(round_trip)


def test_bench_batched_drain(benchmark, payloads):
    packets = make_fragment_packets(payloads)
    benchmark(lambda: drain_batched(packets))


def test_acceptance_secure_pipeline(record):
    # Headline criterion: the fused secure round trip moves the same
    # ADU stream at least 3x faster than the layered walk.
    assert record["speedup"] >= 3.0, record["speedup"]
    # Each direction reads its input exactly once.
    assert record["send_read_passes_per_adu"] == pytest.approx(1.0)
    assert record["receive_read_passes_per_adu"] == pytest.approx(1.0)
    # One vectorized run_batch beats per-ADU verification on the same
    # 64-ADU drain.
    assert record["batch_drain"]["speedup"] > 1.0, record["batch_drain"]
