"""F4 — striped delivery to a parallel processor (paper §7).

Self-describing ADUs dispatch directly to their stripe's node; a serial
byte-stream funnels through one hot spot.  The benchmark times each
dispatch simulation.
"""

import pytest

from repro.apps.parallel import striped_delivery
from repro.bench import experiments


@pytest.fixture(scope="module")
def result():
    return experiments.parallel_dispatch()


def test_bench_alf_dispatch(benchmark, result, report):
    outcome = benchmark(striped_delivery, n_nodes=4, n_adus=64, mode="alf")
    assert outcome.aggregate_throughput_bps > 0
    report(result)


def test_bench_serial_dispatch(benchmark):
    outcome = benchmark(striped_delivery, n_nodes=4, n_adus=64, mode="serial")
    assert outcome.aggregate_throughput_bps > 0


def test_shape_matches_paper(result):
    assert result.measured("1 nodes") == pytest.approx(1.0, rel=0.1)
    assert result.measured("4 nodes") > 3.0
    assert result.measured("8 nodes") > 6.0
