"""F7 — media deadline repair: FEC vs nothing under playout deadlines.

Retransmission is useless for a tile whose frame plays before the
repair round trip completes; transmission-unit FEC repairs in zero RTTs
at ~25% bandwidth overhead.

The tolerant-policy variant attacks the same deadline from the other
side: with bit damage in the *pixel* bytes, a FULL-coverage checksum
discards the whole tile (NO_RETRANSMIT means it is simply gone), while
a ``HEADERS_ONLY`` policy — the paper's ALF "ignore the loss" option —
still delivers every tile on time, flagged so the renderer knows which
ranges to conceal.  The comparison is recorded as a JSON artifact in
``benchmarks/out/bench_media_deadline.json``.
"""

import json
from pathlib import Path

import pytest

from repro.apps.video import stream_video
from repro.bench import experiments
from repro.integrity import IntegrityPolicy

OUT_DIR = Path(__file__).resolve().parent / "out"

N_FRAMES = 10
TILES = 12  # 4x3 per frame
CORRUPT_RATE = 0.3
# Fragment-relative span pinned well past the 64-byte covered header:
# only pixel bytes are ever damaged.
CORRUPT_SPAN = (128, 1100)
HEADER_BYTES = 64


@pytest.fixture(scope="module")
def result():
    return experiments.media_deadline_repair()


def corrupt_stream(integrity):
    return stream_video(
        n_frames=N_FRAMES,
        loss_rate=0.0,
        reorder_rate=0.0,
        corrupt_rate=CORRUPT_RATE,
        corrupt_span=CORRUPT_SPAN,
        integrity=integrity,
        seed=4,
    )


@pytest.fixture(scope="module")
def tolerant_record():
    full = corrupt_stream(IntegrityPolicy.full())
    tolerant = corrupt_stream(IntegrityPolicy.headers_only(HEADER_BYTES))

    def row(outcome):
        return {
            "tiles_sent": outcome.tiles_sent,
            "tiles_delivered": outcome.tiles_delivered,
            "tolerant_tiles": outcome.tolerant_tiles,
            "frame_completion_rate": outcome.frame_completion_rate,
            "tile_loss_rate": outcome.tile_loss_rate,
            "retransmissions": outcome.retransmissions,
        }

    return {
        "n_frames": N_FRAMES,
        "tiles_per_frame": TILES,
        "corrupt_rate": CORRUPT_RATE,
        "corrupt_span": list(CORRUPT_SPAN),
        "policies": {
            "full": row(full),
            f"headers_only:{HEADER_BYTES}": row(tolerant),
        },
    }


def test_bench_fec_video_session(benchmark, result, report):
    outcome = benchmark(
        stream_video, n_frames=10, loss_rate=0.05, seed=4, fec_group=4
    )
    assert outcome.tiles_sent == 10 * 12
    report(result)


def test_bench_plain_video_session(benchmark):
    outcome = benchmark(stream_video, n_frames=10, loss_rate=0.05, seed=4)
    assert outcome.tiles_sent == 10 * 12


def test_shape(result):
    for loss in ("0.02", "0.05"):
        plain = result.measured(f"plain, loss={loss}")
        fec = result.measured(f"FEC(k=4), loss={loss}")
        assert fec >= plain
    assert result.measured("FEC(k=4), loss=0.02") > 0.95


def test_bench_tolerant_video_session(benchmark, tolerant_record):
    outcome = benchmark(
        corrupt_stream, IntegrityPolicy.headers_only(HEADER_BYTES)
    )
    assert outcome.tiles_sent == N_FRAMES * TILES

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    out = OUT_DIR / "bench_media_deadline.json"
    out.write_text(json.dumps(tolerant_record, indent=2, sort_keys=True) + "\n")
    print("MEDIA_DEADLINE_JSON " + json.dumps(tolerant_record, sort_keys=True))


def test_tolerant_beats_full_under_pixel_damage(tolerant_record):
    full = tolerant_record["policies"]["full"]
    tolerant = tolerant_record["policies"][f"headers_only:{HEADER_BYTES}"]
    total = N_FRAMES * TILES
    # FULL coverage turns pixel damage into tile loss (NO_RETRANSMIT:
    # there is no second chance before the play point).
    assert full["tiles_delivered"] < total, tolerant_record
    assert full["tile_loss_rate"] > 0.0, tolerant_record
    # The tolerant policy delivers every tile on time, flagging the
    # damaged ones instead of discarding them.
    assert tolerant["tiles_delivered"] == total, tolerant_record
    assert tolerant["tile_loss_rate"] == 0.0, tolerant_record
    assert tolerant["tolerant_tiles"] > 0, tolerant_record
    assert (
        tolerant["frame_completion_rate"] > full["frame_completion_rate"]
    ), tolerant_record
    # Neither side burned bandwidth on repair traffic.
    assert full["retransmissions"] == 0, tolerant_record
    assert tolerant["retransmissions"] == 0, tolerant_record
