"""F7 — media deadline repair: FEC vs nothing under playout deadlines.

Retransmission is useless for a tile whose frame plays before the
repair round trip completes; transmission-unit FEC repairs in zero RTTs
at ~25% bandwidth overhead.
"""

import pytest

from repro.apps.video import stream_video
from repro.bench import experiments


@pytest.fixture(scope="module")
def result():
    return experiments.media_deadline_repair()


def test_bench_fec_video_session(benchmark, result, report):
    outcome = benchmark(
        stream_video, n_frames=10, loss_rate=0.05, seed=4, fec_group=4
    )
    assert outcome.tiles_sent == 10 * 12
    report(result)


def test_bench_plain_video_session(benchmark):
    outcome = benchmark(stream_video, n_frames=10, loss_rate=0.05, seed=4)
    assert outcome.tiles_sent == 10 * 12


def test_shape(result):
    for loss in ("0.02", "0.05"):
        plain = result.measured(f"plain, loss={loss}")
        fec = result.measured(f"FEC(k=4), loss={loss}")
        assert fec >= plain
    assert result.measured("FEC(k=4), loss=0.02") > 0.95
