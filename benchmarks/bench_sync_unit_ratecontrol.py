"""F6 / A6 — synchronization-unit overhead and out-of-band rate control.

* F6: the per-unit control path priced at cell / packet / ADU
  granularity (§5's "too small a unit" argument).
* A6: the §3 in-band/out-of-band split — receiver grants bound the
  bottleneck application's queue.
"""

import pytest

from repro.bench import experiments
from repro.control.ratecontrol import PacedAduSource, ReceiverRateController
from repro.core.adu import Adu
from repro.core.app import ApplicationProcess
from repro.sim.eventloop import EventLoop


@pytest.fixture(scope="module")
def f6():
    return experiments.sync_unit_overhead()


@pytest.fixture(scope="module")
def a6():
    return experiments.rate_control(n_adus=100)


def run_controlled_transfer():
    loop = EventLoop()
    app = ApplicationProcess(loop, processing_rate_bps=20e6)
    adus = [Adu(index, bytes(4096)) for index in range(50)]
    source = PacedAduSource(
        loop, lambda adu: app.submit(adu.sequence, len(adu.payload)), adus,
        initial_rate_bps=20e6,
    )
    controller = ReceiverRateController(loop, app, source.on_rate_update)
    source.on_drained = controller.stop
    loop.run(until=60)
    return app.processed_bytes


def test_bench_controlled_transfer(benchmark, f6, a6, report):
    assert benchmark(run_controlled_transfer) == 50 * 4096
    report(f6)
    report(a6)


def test_f6_shape(f6):
    cell = f6.measured("sync on ATM cell (44 B net)")
    packet = f6.measured("sync on packet (4 KB)")
    adu = f6.measured("sync on ADU (64 KB)")
    assert cell > 0.5          # cells: control alone eats most of the CPU
    assert packet < 0.05
    assert adu < packet


def test_a6_shape(a6):
    flood = a6.measured("max app backlog, unpaced")
    paced = a6.measured("max app backlog, out-of-band control")
    assert paced < flood / 5
    # Pacing must not meaningfully slow the transfer.
    assert a6.measured("completion time, out-of-band control") < 2 * a6.measured(
        "completion time, unpaced"
    )
