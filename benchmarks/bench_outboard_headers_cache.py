"""A3 / A4 / A5 — the remaining ablations.

* A3: outboard-processor steering bulk and Amdahl bound (§6).
* A4: layered encapsulation vs shared-field header (§8).
* A5: cache depletion across separate passes (footnote 2).
"""

import pytest

from repro.bench import experiments
from repro.core.headers import (
    FragmentInfo,
    LayeredEncapsulation,
    SharedHeader,
)
from repro.machine.cache import DirectMappedCache

INFO = FragmentInfo(
    flow_id=7, adu_sequence=3, fragment_index=1, fragment_total=4,
    adu_length=4096, checksum=0xBEEF, app_name=12345,
)


@pytest.fixture(scope="module")
def a3():
    return experiments.outboard_analysis()


@pytest.fixture(scope="module")
def a4():
    return experiments.header_overhead()


@pytest.fixture(scope="module")
def a5():
    return experiments.cache_depletion()


def test_bench_layered_header_parse(benchmark, a4, report):
    scheme = LayeredEncapsulation()
    packed = scheme.pack(INFO, 1024)
    parsed, _ = benchmark(scheme.parse, packed)
    assert parsed == INFO
    report(a4)


def test_bench_shared_header_parse(benchmark, a3, report):
    scheme = SharedHeader()
    packed = scheme.pack(INFO, 1024)
    parsed, _ = benchmark(scheme.parse, packed)
    assert parsed == INFO
    report(a3)


def test_bench_cache_passes(benchmark, a5, report):
    def three_passes():
        cache = DirectMappedCache(1024, line_bytes=16)
        for _ in range(3):
            cache.access_range(0, 4096)
        return cache.stats.misses

    assert benchmark(three_passes) == 768  # 4096 B / 16 B lines x 3 passes
    report(a5)


def test_a3_shape(a3):
    assert a3.measured("steering ratio, per-element RPC") >= 1.0
    assert a3.measured("outboard speedup bound, toolkit conversion") < 1.1


def test_a4_shape(a4):
    assert a4.measured("shared header bytes") < a4.measured(
        "layered header bytes"
    )
    assert a4.measured("wire efficiency at 44 B payload") > 1.2


def test_a5_shape(a5):
    assert a5.measured("1 KB cache") == pytest.approx(3.0)
    assert a5.measured("64 KB cache") == pytest.approx(1.0)
