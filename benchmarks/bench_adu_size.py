"""F2 — ADU survival vs ADU size under ATM cell loss (paper §5).

"Excessively large ADUs might prevent useful progress at all, since the
probability of any ADU having at least one uncorrected error would
approach one."  The benchmark times segmentation + reassembly of a
64-cell ADU; the shape assertions pin the survival curve.
"""

import pytest

from repro.bench import experiments
from repro.bench.workloads import octet_payload
from repro.net.atm import AtmAdaptationLayer, segment


@pytest.fixture(scope="module")
def result():
    return experiments.adu_size_survival(n_trials=300)


def test_bench_segment_reassemble(benchmark, result, report):
    payload = octet_payload(44 * 64)  # 64 cells

    def roundtrip():
        done = []
        aal = AtmAdaptationLayer(lambda vci, sid, p: done.append(p))
        for cell in segment(payload, vci=1, sdu_id=1):
            aal.receive(cell)
        return done[0]

    assert benchmark(roundtrip) == payload
    report(result)


def test_shape_matches_paper(result):
    survivals = [row.measured for row in result.rows]
    # Monotone non-increasing with size, 1.0-ish at the small end,
    # ~zero at a megabyte.
    assert all(a >= b - 0.05 for a, b in zip(survivals, survivals[1:]))
    assert survivals[0] > 0.95
    assert survivals[-1] < 0.05
