"""A2 (ablation) — single-step sender-side conversion vs a canonical
transfer syntax (paper §5).

Sender-side conversion makes receiver placement computable (no reorder
buffering) and skips the double conversion.  The benchmark times a real
lossy file transfer in each placement regime.
"""

import pytest

from repro.apps.filetransfer import transfer_file
from repro.bench import experiments
from repro.bench.workloads import file_payload


@pytest.fixture(scope="module")
def result():
    return experiments.negotiated_conversion(file_bytes=60_000)


@pytest.fixture(scope="module")
def data():
    return file_payload(60_000, seed=3)


def test_bench_transfer_with_placement(benchmark, data, result, report):
    outcome = benchmark(
        transfer_file, data, loss_rate=0.05, seed=3, placement_at_sender=True
    )
    assert outcome.ok
    report(result)


def test_bench_transfer_without_placement(benchmark, data):
    outcome = benchmark(
        transfer_file, data, loss_rate=0.05, seed=3, placement_at_sender=False
    )
    assert outcome.ok


def test_shape(result):
    assert result.measured(
        "sender-converts end-to-end conversion"
    ) > 2 * result.measured("canonical-ber end-to-end conversion")
    assert result.measured("reorder buffer, placement@sender") == 0.0
    assert result.measured("reorder buffer, placement@receiver") > 0.0
