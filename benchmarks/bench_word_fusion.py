"""E6 — functional word-level fusion, with real wall-clock timing.

Unlike the cost-model experiments, this one can be *timed* meaningfully
in Python: the fused loop keeps intermediate results as live numpy
arrays while the layered reference round-trips every intermediate
through a byte buffer.  On memory-bound sizes the fused loop wins in
wall-clock too, which is ILP's point.
"""

import pytest

from repro.bench import experiments
from repro.bench.workloads import octet_payload
from repro.ilp.kernels import (
    FusedWordLoop,
    byteswap_kernel,
    checksum_kernel,
    copy_kernel,
    xor_kernel,
)

PAYLOAD = octet_payload(1 << 20)  # 1 MB: big enough to be memory-bound


def make_loop():
    return FusedWordLoop(
        [copy_kernel(), checksum_kernel(), xor_kernel(0xA5A5A5A5),
         byteswap_kernel()]
    )


@pytest.fixture(scope="module")
def result():
    return experiments.word_fusion()


def test_bench_fused_loop(benchmark, result, report):
    loop = make_loop()
    out, _ = benchmark(loop.run, PAYLOAD)
    assert len(out) == len(PAYLOAD)
    report(result)


def test_bench_layered_loop(benchmark):
    loop = make_loop()
    out, _ = benchmark(loop.run_layered, PAYLOAD)
    assert len(out) == len(PAYLOAD)


def test_shape(result):
    assert result.measured("outputs identical") == 1.0
    assert result.measured("fusion speedup") > 1.4
