"""Zero-hop sharded ingress — link-steered trains vs the front-end hop.

Two claims from the zero-hop tentpole, measured separately:

**Ingest throughput.**  ``N_FLOWS`` flows send ``WAVES`` trains of
``TRAIN`` single-fragment ADUs each; every train is single-flow, so a
steering link would deliver it straight onto the owning shard.  The
timed region is the *host-side* ingest path — what the receiving
machine executes per train:

* **front-end hop** — :meth:`ShardedHost.receive_burst`: the front end
  walks the train, resolves each flow-run against the placement memo,
  splits per shard and hands off.  Every packet pays a second demux
  walk on its shard host.
* **zero-hop** — :meth:`ShardedHost.steer_burst`: the placement the
  link already resolved while coalescing (one memoized table lookup
  per run, off the timed path in both configurations) lands the train
  directly; the only per-packet walk left is the shard host's own.

Payload bytes are folded into per-flow CRCs so the two paths are
asserted byte-identical, and the steered run's demux counters prove
the hot path really is zero-probe (no front-end packets, no demux
runs, no placement-memo traffic).  Headline gate: steered ADUs/sec ≥
1.3× the front-end hop.

**Skew rebalancing.**  An end-to-end run through a real train-mode
link: 90 % of the flows hash onto one shard, real ALF receivers and
drain engines on every shard, and a :class:`RebalancePolicy` watching
per-shard arrival EWMAs at train boundaries.  The gate: after the
policy's migrations commit, the max/mean per-shard arrival ratio over
the tail of the run is ≤ 1.5 (from ≈ 3.6 at the start), while every
ADU still delivers byte-identical exactly-once and every shard tears
down to a clean ``leak_report``.

Emits a machine-readable JSON record (``ZERO_HOP_INGRESS_JSON`` line
and ``benchmarks/out/bench_zero_hop_ingress.json``) for the CI gate
and artifact.
"""

from __future__ import annotations

import gc
import json
import time
import zlib
from pathlib import Path

import pytest

from repro.machine.accounting import ShardCounters
from repro.net.host import Host
from repro.net.packet import Packet
from repro.net.shard import RebalancePolicy, ShardedHost, shard_index
from repro.net.topology import sharded_ingress
from repro.sim.eventloop import EventLoop
from repro.sim.rng import RngStreams
from repro.transport.alf.receiver import PROTOCOL, AlfReceiver
from repro.transport.alf.sender import AlfSender
from repro.core.adu import Adu, fragment_adu
from repro.stages.checksum import internet_checksum

N_SHARDS = 4
N_FLOWS = 64
TRAIN = 16
WAVES = 24
PAYLOAD = 64
SPEEDUP_GATE = 1.3

SKEW_FLOWS = 30  # 27 on the hot shard, 1 on each of the others
SKEW_ADUS = 40
SKEW_RATIO_GATE = 1.5

OUT_DIR = Path(__file__).resolve().parent / "out"


# ----------------------------------------------------------------------
# Part 1: steered vs front-end-hop ingest throughput


def build_trains() -> list[tuple[int, list[Packet]]]:
    """WAVES single-flow trains per flow, pre-coalesced as a link would."""
    trains = []
    for wave in range(WAVES):
        for flow_id in range(N_FLOWS):
            index = shard_index(PROTOCOL, flow_id, N_SHARDS)
            packets = [
                Packet(
                    src="a", dst="b", protocol=PROTOCOL, flow_id=flow_id,
                    header={"i": wave * TRAIN + i},
                    payload=bytes(
                        (flow_id * 131 + wave * 17 + offset) & 0xFF
                        for offset in range(PAYLOAD)
                    ),
                )
                for i in range(TRAIN)
            ]
            trains.append((index, packets))
    return trains


def build_ingest_host() -> tuple[ShardedHost, list[int], list[int]]:
    """A sharded host with one cheap CRC-sink handler per flow."""
    front = Host(EventLoop(), "b")
    sharded = ShardedHost(
        front, N_SHARDS, rng=RngStreams(5), protocols=(),
        counters=ShardCounters(),
    )
    counts = [0] * N_FLOWS
    crcs = [0] * N_FLOWS
    for flow_id in range(N_FLOWS):
        shard = sharded.shard_for(PROTOCOL, flow_id)

        def sink(packet, fid=flow_id):
            counts[fid] += 1
            crcs[fid] = zlib.crc32(packet.payload, crcs[fid])

        shard.host.bind(PROTOCOL, flow_id, sink)
    return sharded, counts, crcs


def run_ingest(steered: bool) -> dict[str, object]:
    """One timed pass over every train through one ingest path."""
    sharded, counts, crcs = build_ingest_host()
    trains = build_trains()
    table = sharded.steering
    if steered:
        # Resolve placements the way the coalescing link does — off the
        # timed region, like the link's boarding work itself (identical
        # in both configurations).
        steered_trains = [
            (table.steer(PROTOCOL, train[0].flow_id), train)
            for _index, train in trains
        ]
    gc.collect()
    start = time.perf_counter()
    if steered:
        steer_burst = sharded.steer_burst
        for (index, _bucket), train in steered_trains:
            steer_burst(index, train)
    else:
        receive_burst = sharded.receive_burst
        for _index, train in trains:
            receive_burst(train)
    sharded.drain()
    elapsed = time.perf_counter() - start
    n_packets = len(trains) * TRAIN
    demux = sharded.counters.snapshot()
    leaks = sharded.shutdown()
    assert all(report == [] for report in leaks.values())
    return {
        "wall_s": elapsed,
        "adus": n_packets,
        "adus_per_s": n_packets / elapsed,
        "counts": counts,
        "crcs": crcs,
        "demux": demux,
    }


def best_of(fn, repeats: int = 3):
    best = None
    result = None
    for _ in range(repeats):
        candidate = fn()
        if best is None or candidate["wall_s"] < best:
            best, result = candidate["wall_s"], candidate
    return result


# ----------------------------------------------------------------------
# Part 2: skew-aware rebalancing end to end


def skew_flow_ids() -> list[int]:
    """27 flows homing on shard 0's hash, one each on shards 1..3."""
    hot = [fid for fid in range(1, 4096)
           if shard_index(PROTOCOL, fid, N_SHARDS) == 0][:27]
    cold = []
    for shard in (1, 2, 3):
        cold.append(next(
            fid for fid in range(1, 4096)
            if shard_index(PROTOCOL, fid, N_SHARDS) == shard
        ))
    return hot + cold


def adu_stream(flow_id: int) -> tuple[list[Packet], list[bytes]]:
    payloads = [
        bytes((flow_id * 31 + seq * 7 + i) & 0xFF for i in range(PAYLOAD))
        for seq in range(SKEW_ADUS)
    ]
    packets = []
    for seq, payload in enumerate(payloads):
        adu = Adu(sequence=seq, payload=payload, name={"i": seq})
        for fragment in fragment_adu(
            adu, 2048, checksum=internet_checksum(payload)
        ):
            packets.append(
                Packet(
                    src="a", dst="b", protocol=PROTOCOL, flow_id=flow_id,
                    header=AlfSender._fragment_header(fragment),
                    payload=fragment.payload,
                )
            )
    return packets, payloads


def run_skew() -> dict[str, object]:
    """90 % skew, live receivers, policy-driven rebalance mid-run."""
    policy = RebalancePolicy(
        threshold=1.5, goal=1.15, half_life=0.05, min_packets=128,
        max_moves=8,
    )
    ing = sharded_ingress(
        shards=N_SHARDS, steer=True, max_train=8, train_window=1e-3,
        rebalance=policy, buckets_per_shard=8,
        counters=ShardCounters(),
    )
    flows = skew_flow_ids()
    delivered: dict[int, list[bytes]] = {}
    expected: dict[int, list[bytes]] = {}
    streams: dict[int, list[Packet]] = {}
    for flow_id in flows:
        shard = ing.sharded.shard_for(PROTOCOL, flow_id)
        receiver = AlfReceiver(
            shard.loop, shard.host, "a", flow_id,
            deliver=lambda adu, fid=flow_id: delivered.setdefault(
                fid, []
            ).append(bytes(adu.payload)),
            ack_interval=0,
            drain_engine=shard.engine,
        )
        ing.sharded.register_flow(PROTOCOL, flow_id, receiver)
        streams[flow_id], expected[flow_id] = adu_stream(flow_id)
    # Pace the waves through simulated time so the policy's EWMAs see a
    # sustained skew rather than one instantaneous burst.
    dt = 2e-3
    for seq in range(SKEW_ADUS):
        for flow_id in flows:
            ing.loop.schedule_at(
                seq * dt,
                ing.a.send,
                streams[flow_id][seq],
            )
    # Two-thirds in, capture the arrival ledger: the gate is judged on
    # the *tail* of the run, after the migrations have had time to
    # commit — rebalancing claims convergence, not time travel.
    capture: dict[str, list[int]] = {}
    ing.loop.schedule_at(
        SKEW_ADUS * dt * 2 / 3,
        lambda: capture.setdefault(
            "at_two_thirds", list(ing.sharded.steering.shard_packets)
        ),
    )
    start_ratio_sample: dict[str, float] = {}
    ing.loop.schedule_at(
        SKEW_ADUS * dt / 8,
        lambda: start_ratio_sample.setdefault(
            "early", _arrival_ratio(ing.sharded.steering.shard_packets)
        ),
    )
    ing.loop.run()
    ing.sharded.drain()
    snap = ing.sharded.snapshot()
    final = list(ing.sharded.steering.shard_packets)
    tail = [
        final[i] - capture["at_two_thirds"][i] for i in range(N_SHARDS)
    ]
    leaks = ing.sharded.shutdown()
    exactly_once = all(
        sorted(delivered.get(fid, [])) == sorted(expected[fid])
        for fid in flows
    )
    return {
        "flows": len(flows),
        "adus_per_flow": SKEW_ADUS,
        "early_ratio": start_ratio_sample.get("early", 0.0),
        "tail_arrivals": tail,
        "tail_ratio": _arrival_ratio(tail),
        "migrations": snap["demux"]["migrations"],
        "migrated_flows": snap["demux"]["migrated_flows"],
        "remaps": snap["steering"]["remaps"],
        "rebalance": snap["rebalance"],
        "exactly_once": exactly_once,
        "leaks_clean": all(report == [] for report in leaks.values()),
    }


def _arrival_ratio(arrivals) -> float:
    mean = sum(arrivals) / len(arrivals)
    if mean <= 0.0:
        return 1.0
    return max(arrivals) / mean


# ----------------------------------------------------------------------
# Record + gates


@pytest.fixture(scope="module")
def record():
    front_hop = best_of(lambda: run_ingest(steered=False))
    zero_hop = best_of(lambda: run_ingest(steered=True))
    # Byte-identical delivery on both ingest paths.
    assert zero_hop["counts"] == front_hop["counts"]
    assert zero_hop["crcs"] == front_hop["crcs"]
    assert all(count == WAVES * TRAIN for count in zero_hop["counts"])
    skew = run_skew()
    return {
        "n_shards": N_SHARDS,
        "n_flows": N_FLOWS,
        "train": TRAIN,
        "waves": WAVES,
        "front_hop": {
            "wall_s": front_hop["wall_s"],
            "adus_per_s": front_hop["adus_per_s"],
            "demux": front_hop["demux"],
        },
        "zero_hop": {
            "wall_s": zero_hop["wall_s"],
            "adus_per_s": zero_hop["adus_per_s"],
            "demux": zero_hop["demux"],
        },
        "speedup": zero_hop["adus_per_s"] / front_hop["adus_per_s"],
        "skew": skew,
    }


def test_bench_zero_hop_ingress(benchmark, record):
    benchmark(lambda: run_ingest(steered=True))

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    out = OUT_DIR / "bench_zero_hop_ingress.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print("ZERO_HOP_INGRESS_JSON " + json.dumps(record, sort_keys=True))


def test_bench_front_hop(benchmark):
    benchmark(lambda: run_ingest(steered=False))


def test_acceptance_zero_hop_ingress(record):
    # Headline gate: steered ingest beats the front-end hop by ≥ 1.3×.
    assert record["speedup"] >= SPEEDUP_GATE, record

    # The steered hot path really is zero-hop: no front-end per-packet
    # demux, no front-end train walks, no placement-memo probes.
    demux = record["zero_hop"]["demux"]
    assert demux["packets"] == 0, demux
    assert demux["demux_runs"] == 0, demux
    assert demux["memo_hits"] + demux["hash_dispatches"] == 0, demux
    assert demux["steered_packets"] == N_FLOWS * WAVES * TRAIN, demux
    assert demux["fallback_trains"] == 0, demux
    # The baseline, by contrast, walked every packet through the front.
    base = record["front_hop"]["demux"]
    assert base["train_packets"] == N_FLOWS * WAVES * TRAIN, base


def test_acceptance_skew_rebalance(record):
    skew = record["skew"]
    # The run started pathological (≈ 3.6 = 27 hot flows / 7.5 mean)...
    assert skew["early_ratio"] >= 2.5, skew
    # ...the policy committed real migrations...
    assert skew["migrations"] >= 1, skew
    assert skew["remaps"] >= 1, skew
    # ...and the tail of the run is balanced within the gate.
    assert skew["tail_ratio"] <= SKEW_RATIO_GATE, skew
    # Delivery semantics survived the rebalance.
    assert skew["exactly_once"], skew
    assert skew["leaks_clean"], skew
