"""Selective integrity — coverage-span checksums through the drain path.

Three measurements, one story: the §5 ALF argument that integrity is an
application-layer *policy*, compiled into the wire plan instead of
hard-coded into the transport.

**Throughput A/B.**  32 single-fragment flows send 4 large ADUs each
across one simulated link into a 4-shard
:class:`~repro.net.shard.ShardedHost`, once per policy:

* **FULL** — every payload word is folded on both ends (the classic
  checksum, expressed as an explicit policy so the coverage kernel's
  read-pass accounting applies);
* **SPANS** — only the covered spans fold; uncovered words are masked
  out of the vectorized sum, so checksum work scales with covered
  bytes, not payload bytes;
* **HEADERS_ONLY** — coverage is a short prefix, which additionally
  lets the batch drain gather only each row's covered head: the
  payload body is never packed, read or unpacked at all.

Delivery is asserted byte-identical and exactly-once for every policy.
Headline gates: HEADERS_ONLY drained ADUs/sec ≥ 2x FULL, and the SPANS
run's checksum bytes-read (DatapathCounters read-pass accounting) is
proportional to its covered fraction.

**Corrupt tolerance.**  A lossy path pins bit flips inside, then
outside, a SPANS policy's coverage.  Uncovered damage must deliver
100% of ADUs flagged with the damaged ranges (the paper's ALF "ignore"
recovery mode) and byte-identical outside the flags; covered damage
must still be caught and repaired every time, with zero corrupt rows
accepted.  Emits a machine-readable JSON record
(``SELECTIVE_INTEGRITY_JSON`` line and ``benchmarks/out/
bench_selective_integrity.json``) for the CI gate and artifact.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import pytest

from repro.core.adu import Adu
from repro.ilp.compiler import PlanCache
from repro.integrity import IntegrityPolicy
from repro.machine.accounting import datapath_counters, integrity_counters
from repro.machine.profile import MIPS_R2000
from repro.net.host import Host
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.shard import ShardedHost, shard_index
from repro.net.topology import two_hosts
from repro.sim.eventloop import EventLoop
from repro.sim.rng import RngStreams
from repro.transport.alf.receiver import AlfReceiver
from repro.transport.alf.sender import WIRE_CHECKSUM, AlfSender, wire_pipeline
from repro.transport.drain import SharedDrainEngine  # noqa: F401 (doc link)

N_FLOWS = 32
N_ADUS = 4
PAYLOAD = 128 * 1024
N_SHARDS = 4
HEADER_BYTES = 64
SPAN_BYTES = 4096
SPEEDUP_GATE = 2.0

# Corrupt-tolerance scenario (small ADUs; correctness, not throughput).
TOL_ADUS = 32
TOL_PAYLOAD = 4096
TOL_SPANS = ((0, 256),)

OUT_DIR = Path(__file__).resolve().parent / "out"

POLICIES = {
    "full": IntegrityPolicy.full(),
    "spans": IntegrityPolicy.of_spans([(0, SPAN_BYTES)]),
    "headers_only": IntegrityPolicy.headers_only(HEADER_BYTES),
}

_BODY = bytes(range(256)) * (PAYLOAD // 256)


def payload_for(flow_id: int, seq: int) -> bytes:
    prefix = bytes(((flow_id * 131 + seq * 17 + k) & 0xFF) for k in range(64))
    return prefix + _BODY[64:]


def data_packet(plan, flow_id: int, seq: int) -> Packet:
    payload = payload_for(flow_id, seq)
    _, observations = plan.run(payload)
    return Packet(
        src="a",
        dst="b",
        protocol="alf",
        flow_id=flow_id,
        header={
            "adu_seq": seq,
            "frag": 0,
            "nfrags": 1,
            "adu_len": PAYLOAD,
            "adu_csum": observations[WIRE_CHECKSUM],
            "name": {"seq": seq},
        },
        payload=payload,
    )


def build_scenario(policy: IntegrityPolicy):
    """Sender host, one forward link, and a 4-shard receiving host with
    one receiver per flow, all running ``policy``."""
    loop = EventLoop()
    front = Host(loop, "b")
    sender = Host(loop, "a")
    link = Link(
        loop,
        RngStreams(3).stream("fwd"),
        bandwidth_bps=1e12,
        propagation_delay=1e-4,
        name="a->b",
    )
    sender.add_link("b", link)
    sharded = ShardedHost(
        front,
        N_SHARDS,
        rng=RngStreams(5),
        pool_buffers=N_FLOWS * 2,
        buffer_size=PAYLOAD,
        max_rows=1 << 16,
    )
    sharded.attach_link(link)
    ack_rng = RngStreams(9)
    for shard in sharded.shards:
        sink = Host(shard.loop, "a")
        ack = Link(
            shard.loop,
            ack_rng.stream(f"ack-{shard.index}"),
            propagation_delay=1e-4,
            name=f"b->a/{shard.index}",
        )
        ack.connect(sink.receive)
        shard.host.add_link("a", ack)
    cache = PlanCache(capacity=8)
    delivered: dict[int, list[bytes]] = {}
    by_shard: dict[int, list[int]] = {}
    for flow_id in range(N_FLOWS):
        by_shard.setdefault(shard_index("alf", flow_id, N_SHARDS), []).append(
            flow_id
        )
    for index in sorted(by_shard):
        shard = sharded.shards[index]
        for flow_id in by_shard[index]:
            AlfReceiver(
                shard.loop,
                shard.host,
                "a",
                flow_id,
                deliver=lambda adu, fid=flow_id: delivered.setdefault(
                    fid, []
                ).append(bytes(adu.payload)),
                ack_interval=0,
                plan_cache=cache,
                zero_copy=True,
                drain_engine=shard.engine,
                integrity=policy,
            )
    return loop, sender, sharded, delivered, cache


def run_once(policy: IntegrityPolicy) -> dict[str, object]:
    """One full run; returns send-to-drain wall time plus correctness
    evidence and the policy's coverage accounting."""
    loop, sender, sharded, delivered, cache = build_scenario(policy)
    plan = cache.get_or_compile(
        wire_pipeline(None, integrity=policy), MIPS_R2000
    )
    packets = [
        data_packet(plan, flow_id, seq)
        for flow_id in range(N_FLOWS)
        for seq in range(N_ADUS)
    ]
    gc.collect()
    datapath_counters().reset()
    integrity_counters().reset()
    start = time.perf_counter()
    for packet in packets:
        sender.send(packet)
    loop.run()
    sharded.drain()
    elapsed = time.perf_counter() - start
    datapath = datapath_counters().snapshot()
    integrity = integrity_counters().snapshot()
    delivered_total = sharded.delivered_total
    leaks = sharded.shutdown()
    return {
        "wall_s": elapsed,
        "delivered": delivered,
        "delivered_total": delivered_total,
        "bytes_read": datapath["bytes_read"],
        "integrity": integrity,
        "leaks": leaks,
    }


def check_delivery(result: dict[str, object]) -> None:
    """Byte-identical, exactly-once, in order, and leak-free."""
    delivered = result["delivered"]
    assert result["delivered_total"] == N_FLOWS * N_ADUS, result[
        "delivered_total"
    ]
    for flow_id in range(N_FLOWS):
        expected = [payload_for(flow_id, seq) for seq in range(N_ADUS)]
        assert delivered.get(flow_id) == expected, f"flow {flow_id} diverged"
    for index, report in result["leaks"].items():
        assert report == [], f"shard {index} leaked: {report}"


def run_tolerant(corrupt_span: tuple[int, int], corrupt_rate: float) -> dict:
    """One serial flow under a SPANS policy with pinned damage."""
    policy = IntegrityPolicy.of_spans(TOL_SPANS)
    integrity_counters().reset()
    path = two_hosts(
        seed=7,
        bandwidth_bps=1e9,
        corrupt_rate=corrupt_rate,
        corrupt_span=corrupt_span,
    )
    delivered: list = []
    receiver = AlfReceiver(
        path.loop, path.b, "a", 1, delivered.append,
        ack_interval=0.01, expected_adus=TOL_ADUS,
        integrity=policy, batch_drain=True,
    )
    sender = AlfSender(
        path.loop, path.a, "b", 1, mtu=TOL_PAYLOAD, integrity=policy
    )
    payloads = [
        bytes(((i * 37 + k) & 0xFF) for k in range(TOL_PAYLOAD))
        for i in range(TOL_ADUS)
    ]
    for i, payload in enumerate(payloads):
        sender.send_adu(Adu(i, payload, {"i": i}))
    path.loop.run(until=10.0)
    intact = 0
    covered_hits_accepted = 0
    for adu in delivered:
        reference = bytearray(payloads[adu.sequence])
        for lo, hi in adu.corrupt_spans:
            if policy.covers(lo, hi):
                covered_hits_accepted += 1
            reference[lo:hi] = adu.payload[lo:hi]
        if bytes(reference) == adu.payload:
            intact += 1
    return {
        "delivered": len(delivered),
        "flagged": sum(1 for adu in delivered if adu.corrupt_spans),
        "intact_outside_flags": intact,
        "covered_hits_accepted": covered_hits_accepted,
        "checksum_failures": receiver.stats.checksum_failures,
        "retransmissions": sender.stats.retransmissions,
        "tolerant_deliveries": integrity_counters().snapshot()[
            "tolerant_deliveries"
        ],
    }


def best_of(fn, repeats: int = 3):
    best = None
    result = None
    for _ in range(repeats):
        candidate = fn()
        if best is None or candidate["wall_s"] < best:
            best, result = candidate["wall_s"], candidate
    return result


@pytest.fixture(scope="module")
def record():
    results = {
        key: best_of(lambda policy=policy: run_once(policy))
        for key, policy in POLICIES.items()
    }
    for result in results.values():
        check_delivery(result)

    total = N_FLOWS * N_ADUS
    uncovered = run_tolerant(corrupt_span=(1024, 3072), corrupt_rate=1.0)
    covered = run_tolerant(corrupt_span=(0, 128), corrupt_rate=0.5)

    spans_fraction = SPAN_BYTES / PAYLOAD
    return {
        "n_flows": N_FLOWS,
        "adus_per_flow": N_ADUS,
        "payload_bytes": PAYLOAD,
        "n_shards": N_SHARDS,
        "policies": {
            key: {
                "fingerprint": POLICIES[key].fingerprint,
                "wall_s": result["wall_s"],
                "adus_per_s": total / result["wall_s"],
                "bytes_read": result["bytes_read"],
                "covered_bytes": result["integrity"]["covered_bytes"],
                "skipped_bytes": result["integrity"]["skipped_bytes"],
                "skip_fraction": result["integrity"]["skip_fraction"],
                "policy_hits": result["integrity"]["policy_hits"],
            }
            for key, result in results.items()
        },
        "speedup_headers_vs_full": results["full"]["wall_s"]
        / results["headers_only"]["wall_s"],
        "spans_coverage_fraction": spans_fraction,
        "spans_read_ratio": results["spans"]["bytes_read"]
        / max(results["full"]["bytes_read"], 1),
        "tolerant": {
            "adus": TOL_ADUS,
            "payload_bytes": TOL_PAYLOAD,
            "covered_spans": [list(span) for span in TOL_SPANS],
            "uncovered_damage": uncovered,
            "covered_damage": covered,
        },
    }


def test_bench_selective_integrity(benchmark, record):
    benchmark(lambda: run_once(POLICIES["headers_only"]))

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    out = OUT_DIR / "bench_selective_integrity.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print("SELECTIVE_INTEGRITY_JSON " + json.dumps(record, sort_keys=True))


def test_bench_full_coverage(benchmark):
    benchmark(lambda: run_once(POLICIES["full"]))


def test_acceptance_selective_integrity(record):
    # Headline gate: HEADERS_ONLY drains at least 2x FULL's ADUs/sec —
    # the batch path gathers only the covered 64-byte heads while FULL
    # packs, folds and unpacks every payload word on both ends.
    assert record["speedup_headers_vs_full"] >= SPEEDUP_GATE, record
    # The mechanism is the one claimed: the SPANS run's checksum read
    # passes are proportional to its covered fraction, not payload
    # size.  (Allow generous slack for the odd non-checksum read pass.)
    fraction = record["spans_coverage_fraction"]
    assert record["spans_read_ratio"] <= fraction * 1.5 + 0.01, record
    assert record["spans_read_ratio"] >= fraction * 0.5, record
    # HEADERS_ONLY skipped essentially the whole payload body.
    headers = record["policies"]["headers_only"]
    assert headers["skip_fraction"] >= 0.95, record

    tolerant = record["tolerant"]
    # Uncovered damage: 100% delivered, every ADU flagged, payloads
    # byte-identical outside the flagged ranges, zero repair traffic.
    uncovered = tolerant["uncovered_damage"]
    assert uncovered["delivered"] == TOL_ADUS, record
    assert uncovered["flagged"] == TOL_ADUS, record
    assert uncovered["intact_outside_flags"] == TOL_ADUS, record
    assert uncovered["checksum_failures"] == 0, record
    assert uncovered["tolerant_deliveries"] == TOL_ADUS, record
    # Covered damage: still caught and repaired every time — no corrupt
    # row accepted, no false flags.
    covered = tolerant["covered_damage"]
    assert covered["delivered"] == TOL_ADUS, record
    assert covered["checksum_failures"] > 0, record
    assert covered["flagged"] == 0, record
    assert covered["covered_hits_accepted"] == 0, record
    assert covered["intact_outside_flags"] == TOL_ADUS, record
