"""Sharded hosts — per-shard drain workers vs one receive stack.

One machine serves ``N_FLOWS`` concurrent ALF flows, one ADU each, all
sharing one wire-plan shape.  Two engineerings:

* **1 shard** — the PR-5 baseline: every flow registers with one
  host-wide :class:`~repro.transport.drain.SharedDrainEngine`.  Each
  completion pays the engine's backlog scan over *every* registered
  flow, so the host does O(flows²) shared-structure work.
* **4 shards** — a :class:`~repro.net.shard.ShardedHost` demuxes flows
  by stable hash to four workers, each with its own loop, engine and rx
  pool.  The same scan covers only the shard's flows: O(flows²/N).

Both engineerings run the identical packets through the identical
demux/reassembly/verify/deliver path (zero-copy, per-shard DMA pools);
delivery is asserted byte-identical and exactly-once, and every shard
tears down to a clean ``leak_report``.  The headline gate: aggregate
drained ADUs/sec at 4 shards ≥ 2.5× the 1-shard baseline.  The ratio is
measured in the deterministic serial scheduler (the structural win —
scan work divided by N — needs no parallelism, so the gate holds on a
single-core runner); a threaded 4-shard run is recorded alongside for
machines with real cores.  Emits a machine-readable JSON record
(``SHARDED_HOSTS_JSON`` line and ``benchmarks/out/
bench_sharded_hosts.json``) for the CI gate and artifact.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import pytest

from repro.ilp.compiler import PlanCache
from repro.machine.accounting import ShardCounters
from repro.machine.profile import MIPS_R2000
from repro.net.host import Host
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.shard import ShardedHost, shard_index
from repro.sim.eventloop import EventLoop
from repro.sim.rng import RngStreams
from repro.transport.alf.receiver import AlfReceiver
from repro.transport.alf.sender import WIRE_CHECKSUM, wire_pipeline

N_FLOWS = 4096
PAYLOAD = 64
MAX_ROWS = 16384  # one coalesced dispatch per shard per drain epoch
BUFFER = 256  # per-shard rx pool buffer size (one segment per packet)
N_SHARDS = 4
SCALING_GATE = 2.5

OUT_DIR = Path(__file__).resolve().parent / "out"

PAYLOADS = [
    bytes((flow_id * 131 + offset) & 0xFF for offset in range(PAYLOAD))
    for flow_id in range(N_FLOWS)
]


def build_scenario(n_shards: int, threaded: bool = False):
    """A front host, N worker shards, and one receiver per flow."""
    front = Host(EventLoop(), "b")
    demux = ShardCounters()
    sharded = ShardedHost(
        front,
        n_shards,
        rng=RngStreams(5),
        threaded=threaded,
        pool_buffers=N_FLOWS // n_shards + 64,
        buffer_size=BUFFER,
        max_rows=MAX_ROWS,
        protocols=(),
        counters=demux,
    )
    ack_rng = RngStreams(9)
    for shard in sharded.shards:
        # ACK egress rides a shard-local link (events stay on the
        # shard's own loop — required for the threaded mode).
        sink = Host(shard.loop, "a")
        link = Link(
            shard.loop,
            ack_rng.stream(f"ack-{shard.index}"),
            propagation_delay=1e-4,
            name=f"b->a/{shard.index}",
        )
        link.connect(sink.receive)
        shard.host.add_link("a", link)
    cache = PlanCache(capacity=8)
    delivered: dict[int, list[bytes]] = {}
    # Construct receivers grouped by home shard so each shard's flow
    # state is contiguous in the heap — the same placement a real
    # sharded host gets for free by allocating flow state on the owning
    # worker.  Interleaved construction strides every backlog scan
    # across all shards' objects and inflates per-visit cache misses.
    by_shard: dict[int, list[int]] = {}
    for flow_id in range(N_FLOWS):
        index = shard_index("alf", flow_id, n_shards)
        by_shard.setdefault(index, []).append(flow_id)
    for index in sorted(by_shard):
        shard = sharded.shards[index]
        for flow_id in by_shard[index]:
            AlfReceiver(
                shard.loop,
                shard.host,
                "a",
                flow_id,
                deliver=lambda adu, fid=flow_id: delivered.setdefault(
                    fid, []
                ).append(bytes(adu.payload)),
                ack_interval=0,
                plan_cache=cache,
                zero_copy=True,
                drain_engine=shard.engine,
            )
    return sharded, demux, delivered, cache


def build_packets(cache: PlanCache) -> list[Packet]:
    """Fresh single-fragment data packets (payloads mutate into chains
    on pooled receive, so every run needs its own)."""
    plan = cache.get_or_compile(wire_pipeline(None), MIPS_R2000)
    packets = []
    for flow_id in range(N_FLOWS):
        payload = PAYLOADS[flow_id]
        _, observations = plan.run(payload)
        packets.append(
            Packet(
                src="a",
                dst="b",
                protocol="alf",
                flow_id=flow_id,
                header={
                    "adu_seq": 0,
                    "frag": 0,
                    "nfrags": 1,
                    "adu_len": PAYLOAD,
                    "adu_csum": observations[WIRE_CHECKSUM],
                    "name": {"seq": 0},
                },
                payload=payload,
            )
        )
    return packets


def run_once(n_shards: int, threaded: bool = False) -> dict[str, object]:
    """One full run; returns the wall time of the demux+drain hot path
    plus correctness evidence (payload map, counters, leak reports)."""
    sharded, demux, delivered, cache = build_scenario(n_shards, threaded)
    packets = build_packets(cache)
    gc.collect()
    start = time.perf_counter()
    sharded.receive_burst(packets)
    sharded.drain()
    elapsed = time.perf_counter() - start
    scan_visits = sum(s.counters.scan_visits for s in sharded.shards)
    dispatches = sum(s.counters.dispatches for s in sharded.shards)
    delivered_total = sharded.delivered_total
    leaks = sharded.shutdown()
    return {
        "wall_s": elapsed,
        "delivered": delivered,
        "delivered_total": delivered_total,
        "scan_visits": scan_visits,
        "dispatches": dispatches,
        "demux": demux.snapshot(),
        "leaks": leaks,
    }


def check_delivery(result: dict[str, object]) -> None:
    """Byte-identical, exactly-once, and leak-free."""
    delivered = result["delivered"]
    assert result["delivered_total"] == N_FLOWS, result["delivered_total"]
    assert len(delivered) == N_FLOWS, len(delivered)
    for flow_id in range(N_FLOWS):
        rows = delivered[flow_id]
        assert len(rows) == 1, f"flow {flow_id}: {len(rows)} deliveries"
        assert rows[0] == PAYLOADS[flow_id], f"flow {flow_id} diverged"
    for index, report in result["leaks"].items():
        assert report == [], f"shard {index} leaked: {report}"


def best_of(fn, repeats: int = 3):
    best = None
    result = None
    for _ in range(repeats):
        candidate = fn()
        if best is None or candidate["wall_s"] < best:
            best, result = candidate["wall_s"], candidate
    return result


@pytest.fixture(scope="module")
def record():
    single = best_of(lambda: run_once(1))
    sharded = best_of(lambda: run_once(N_SHARDS))
    threaded = run_once(N_SHARDS, threaded=True)
    for result in (single, sharded, threaded):
        check_delivery(result)

    scaling = single["wall_s"] / sharded["wall_s"]
    return {
        "n_flows": N_FLOWS,
        "payload_bytes": PAYLOAD,
        "n_shards": N_SHARDS,
        "single": {
            "wall_s": single["wall_s"],
            "adus_per_s": N_FLOWS / single["wall_s"],
            "scan_visits": single["scan_visits"],
            "dispatches": single["dispatches"],
        },
        "sharded": {
            "wall_s": sharded["wall_s"],
            "adus_per_s": N_FLOWS / sharded["wall_s"],
            "scan_visits": sharded["scan_visits"],
            "dispatches": sharded["dispatches"],
            "demux": sharded["demux"],
        },
        "threaded": {
            "wall_s": threaded["wall_s"],
            "adus_per_s": N_FLOWS / threaded["wall_s"],
        },
        "scaling": scaling,
        "scan_reduction": single["scan_visits"]
        / max(sharded["scan_visits"], 1),
    }


def test_bench_sharded_hosts(benchmark, record):
    benchmark(lambda: run_once(N_SHARDS))

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    out = OUT_DIR / "bench_sharded_hosts.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print("SHARDED_HOSTS_JSON " + json.dumps(record, sort_keys=True))


def test_bench_single_shard(benchmark):
    benchmark(lambda: run_once(1))


def test_acceptance_sharded_hosts(record):
    # Headline gate: aggregate drained ADUs/sec at 4 shards is at
    # least 2.5x the 1-shard baseline (near-linear structural scaling).
    assert record["scaling"] >= SCALING_GATE, record
    # The mechanism is the one claimed: the per-completion backlog scan
    # shrank by ~N (every flow visited once per completion before,
    # only its shard's flows after).
    assert record["scan_reduction"] >= N_SHARDS * 0.9, record
    # One coalesced dispatch per shard (max_rows covers the backlog).
    assert record["sharded"]["dispatches"] == N_SHARDS, record
    assert record["single"]["dispatches"] == 1, record
