"""T1 — Table 1: copy and checksum speeds on the paper's two machines.

The benchmark times the *functional* implementations (a real 4 KB copy
and RFC 1071 checksum); the experiment rows report the calibrated model's
Mb/s against the paper's table.
"""

import pytest

from repro.bench import experiments
from repro.bench.workloads import PACKET_BYTES, octet_payload
from repro.stages.checksum import internet_checksum


@pytest.fixture(scope="module")
def result():
    return experiments.table1()


@pytest.fixture(scope="module")
def payload():
    return octet_payload(PACKET_BYTES)


def test_bench_copy(benchmark, payload, result, report):
    out = benchmark(lambda: bytes(payload))
    assert out == payload
    report(result)


def test_bench_checksum(benchmark, payload, result):
    checksum = benchmark(internet_checksum, payload)
    assert 0 <= checksum <= 0xFFFF


def test_shape_matches_paper(result):
    for row in result.rows:
        assert row.measured == pytest.approx(row.paper, rel=1e-3), row.label
