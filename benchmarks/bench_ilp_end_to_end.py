"""E7 — end-to-end goodput: the engineering decision's consequences.

The closing experiment: identical lossy transfers into a host whose
per-ADU service time comes from the calibrated machine model; layered vs
integrated receive-path engineering is the only variable.
"""

import pytest

from repro.bench import experiments


@pytest.fixture(scope="module")
def result():
    return experiments.ilp_end_to_end(n_adus=120)


def test_bench_end_to_end_integrated(benchmark, result, report):
    goodput = benchmark(
        lambda: experiments.ilp_end_to_end(n_adus=40).measured(
            "goodput, integrated receive path"
        )
    )
    assert goodput > 0
    report(result)


def test_shape(result):
    layered = result.measured("goodput, layered receive path")
    integrated = result.measured("goodput, integrated receive path")
    assert integrated > 1.3 * layered
    assert result.measured("end-to-end ILP speedup") < 2.5
