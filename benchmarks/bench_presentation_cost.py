"""E2 — presentation conversion vs the basic copy (130 vs 28 Mb/s).

Times the real BER integer-array encoder (the paper's conversion
workload) and asserts the modelled 4-5x slowdown.
"""

import pytest

from repro.bench import experiments
from repro.bench.workloads import integer_array
from repro.presentation.abstract import ArrayOf, Int32
from repro.presentation.ber import BerCodec
from repro.presentation.xdr import XdrCodec


@pytest.fixture(scope="module")
def result():
    return experiments.presentation_cost()


@pytest.fixture(scope="module")
def values():
    return integer_array(1000)


def test_bench_ber_encode(benchmark, values, result, report):
    codec = BerCodec()
    encoded = benchmark(codec.encode, values, ArrayOf(Int32()))
    assert codec.decode(encoded, ArrayOf(Int32())) == values
    report(result)


def test_bench_ber_decode(benchmark, values):
    codec = BerCodec()
    encoded = codec.encode(values, ArrayOf(Int32()))
    decoded = benchmark(codec.decode, encoded, ArrayOf(Int32()))
    assert decoded == values


def test_bench_xdr_encode(benchmark, values):
    """XDR is the cheap comparison point (a byte swap per word)."""
    codec = XdrCodec()
    encoded = benchmark(codec.encode, values, ArrayOf(Int32()))
    assert len(encoded) == 4 + 4 * len(values)


def test_shape_matches_paper(result):
    assert result.measured("word-aligned copy") == pytest.approx(130.0, rel=0.01)
    assert result.measured(
        "ASN.1 integer-array encode (tuned)"
    ) == pytest.approx(28.0, rel=0.01)
    assert 4.0 <= result.measured("slowdown factor") <= 5.0
