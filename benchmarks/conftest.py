"""Benchmark-suite configuration.

Each ``bench_*.py``/``test_*`` pair regenerates one table or figure from
the paper (see DESIGN.md's experiment index).  The pytest-benchmark
timing measures the reproduction's own hot path; the experiment's
paper-vs-measured rows are printed to stdout (run with ``-s`` to see
them) and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def emit(result) -> None:
    """Print an experiment table beneath the benchmark output."""
    print()
    print(result.format())


@pytest.fixture(scope="session")
def report():
    """The emit helper as a fixture, for readability in benches."""
    return emit
