"""End-to-end packet trains — burst delivery, ring handoff, adaptive epochs.

Two measurements, one story: §4's "burst" observation (per-*train*
control cost instead of per-packet) carried through every layer of the
receive path.

**Ingest A/B.**  64 ALF flows send 64 ADUs each across one simulated
link into a 4-shard :class:`~repro.net.shard.ShardedHost`:

* **per-packet** — the PR-6 baseline: the link upcalls once per packet,
  the demux probes the placement memo once per packet, each worker is
  poked once per packet.
* **trains of 32** — the link coalesces back-to-back deliveries into
  one ``receive_burst`` upcall; the demux walks the train in one pass
  (one memo probe per flow-run), pushes one burst descriptor per shard
  per train, and pokes each worker once per train.

Both engineerings run the identical packets; delivery is asserted
byte-identical and exactly-once, and every shard tears down to a clean
``leak_report``.  Headline gates: drained ADUs/sec with trains ≥ 2x the
per-packet baseline, and demux memo probes cut ≥ 4x.

**Adaptive epochs.**  A host-wide drain engine serves 16 flows through
two regimes — a lone idle ADU, then 32 waves of 16 rows arriving every
half-epoch — with ``adaptive`` off and on.  The adaptive engine must
flush the idle ADU immediately (zero simulated latency vs. the fixed
engine's full ``max_delay``), batch *deeper* than the fixed engine
under sustained backlog, and settle back to immediate flushes after
the storm.  Emits a machine-readable JSON record
(``PACKET_TRAINS_JSON`` line and ``benchmarks/out/
bench_packet_trains.json``) for the CI gate and artifact.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import pytest

from repro.ilp.compiler import PlanCache
from repro.machine.accounting import DrainCounters, ShardCounters
from repro.machine.profile import MIPS_R2000
from repro.net.host import Host
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.shard import ShardedHost, shard_index
from repro.sim.eventloop import EventLoop
from repro.sim.rng import RngStreams
from repro.transport.alf.receiver import AlfReceiver
from repro.transport.alf.sender import WIRE_CHECKSUM, wire_pipeline
from repro.transport.drain import SharedDrainEngine

N_FLOWS = 64
N_ADUS = 64
PAYLOAD = 64
TRAIN = 32
TRAIN_WINDOW = 1e-3
N_SHARDS = 4
SPEEDUP_GATE = 2.0
PROBE_GATE = 4.0

# Adaptive-epoch scenario.
EPOCH = 0.005
WAVE_FLOWS = 16
WAVES = 32
RAMP_ROWS = 8  # a ~one-wave EWMA already means "sustained backlog"

OUT_DIR = Path(__file__).resolve().parent / "out"


def payload_for(flow_id: int, seq: int) -> bytes:
    return bytes(
        (flow_id * 131 + seq * 17 + offset) & 0xFF for offset in range(PAYLOAD)
    )


def data_packet(plan, flow_id: int, seq: int) -> Packet:
    payload = payload_for(flow_id, seq)
    _, observations = plan.run(payload)
    return Packet(
        src="a",
        dst="b",
        protocol="alf",
        flow_id=flow_id,
        header={
            "adu_seq": seq,
            "frag": 0,
            "nfrags": 1,
            "adu_len": PAYLOAD,
            "adu_csum": observations[WIRE_CHECKSUM],
            "name": {"seq": seq},
        },
        payload=payload,
    )


def build_scenario(max_train: int):
    """Sender host, one forward link (train mode per ``max_train``),
    and a 4-shard receiving host with one receiver per flow."""
    loop = EventLoop()
    front = Host(loop, "b")
    sender = Host(loop, "a")
    link = Link(
        loop,
        RngStreams(3).stream("fwd"),
        bandwidth_bps=1e9,
        propagation_delay=1e-4,
        max_train=max_train,
        train_window=TRAIN_WINDOW if max_train > 1 else 0.0,
        name="a->b",
    )
    sender.add_link("b", link)
    demux = ShardCounters()
    sharded = ShardedHost(
        front,
        N_SHARDS,
        rng=RngStreams(5),
        pool_buffers=N_FLOWS * 2,
        buffer_size=256,
        max_rows=1 << 16,
        counters=demux,
    )
    sharded.attach_link(link)
    ack_rng = RngStreams(9)
    for shard in sharded.shards:
        sink = Host(shard.loop, "a")
        ack = Link(
            shard.loop,
            ack_rng.stream(f"ack-{shard.index}"),
            propagation_delay=1e-4,
            name=f"b->a/{shard.index}",
        )
        ack.connect(sink.receive)
        shard.host.add_link("a", ack)
    cache = PlanCache(capacity=8)
    delivered: dict[int, list[bytes]] = {}
    by_shard: dict[int, list[int]] = {}
    for flow_id in range(N_FLOWS):
        by_shard.setdefault(shard_index("alf", flow_id, N_SHARDS), []).append(
            flow_id
        )
    for index in sorted(by_shard):
        shard = sharded.shards[index]
        for flow_id in by_shard[index]:
            AlfReceiver(
                shard.loop,
                shard.host,
                "a",
                flow_id,
                deliver=lambda adu, fid=flow_id: delivered.setdefault(
                    fid, []
                ).append(bytes(adu.payload)),
                ack_interval=0,
                plan_cache=cache,
                zero_copy=True,
                drain_engine=shard.engine,
            )
    return loop, sender, link, sharded, demux, delivered, cache


def build_packets(cache: PlanCache) -> list[Packet]:
    """Fresh data packets, flow-major: each flow's ADUs are
    back-to-back on the wire, so runs (and trains) are long."""
    plan = cache.get_or_compile(wire_pipeline(None), MIPS_R2000)
    return [
        data_packet(plan, flow_id, seq)
        for flow_id in range(N_FLOWS)
        for seq in range(N_ADUS)
    ]


def run_once(max_train: int) -> dict[str, object]:
    """One full run; returns the wall time of send-to-drain plus
    correctness evidence (payload map, counters, leak reports)."""
    loop, sender, link, sharded, demux, delivered, cache = build_scenario(
        max_train
    )
    packets = build_packets(cache)
    gc.collect()
    start = time.perf_counter()
    for packet in packets:
        sender.send(packet)
    loop.run()
    sharded.drain()
    elapsed = time.perf_counter() - start
    delivered_total = sharded.delivered_total
    leaks = sharded.shutdown()
    return {
        "wall_s": elapsed,
        "delivered": delivered,
        "delivered_total": delivered_total,
        "demux": demux.snapshot(),
        "trains": link.stats.trains,
        "train_packets": link.stats.train_packets,
        "leaks": leaks,
    }


def check_delivery(result: dict[str, object]) -> None:
    """Byte-identical, exactly-once, in order, and leak-free."""
    delivered = result["delivered"]
    assert result["delivered_total"] == N_FLOWS * N_ADUS, result[
        "delivered_total"
    ]
    for flow_id in range(N_FLOWS):
        expected = [payload_for(flow_id, seq) for seq in range(N_ADUS)]
        assert delivered.get(flow_id) == expected, f"flow {flow_id} diverged"
    for index, report in result["leaks"].items():
        assert report == [], f"shard {index} leaked: {report}"


def run_adaptive(adaptive: bool) -> dict[str, object]:
    """Idle probe, backlog storm, settle probe — all simulated time."""
    loop = EventLoop()
    host = Host(loop, "b")
    sink = Host(loop, "a")
    ack = Link(loop, RngStreams(1).stream("ack"), propagation_delay=1e-4)
    ack.connect(sink.receive)
    host.add_link("a", ack)
    counters = DrainCounters()
    engine = SharedDrainEngine(
        loop,
        max_rows=1 << 16,
        max_delay=EPOCH,
        adaptive=adaptive,
        ramp_rows=RAMP_ROWS,
        counters=counters,
    )
    cache = PlanCache(capacity=8)
    plan = cache.get_or_compile(wire_pipeline(None), MIPS_R2000)
    delivered_at: dict[int, list[float]] = {}
    for flow_id in range(WAVE_FLOWS):
        AlfReceiver(
            loop,
            host,
            "a",
            flow_id,
            deliver=lambda adu, fid=flow_id: delivered_at.setdefault(
                fid, []
            ).append(loop.now),
            ack_interval=0,
            plan_cache=cache,
            drain_engine=engine,
        )
    # Idle regime: one lone ADU; its delivery time IS its flush latency.
    host.receive(data_packet(plan, 0, 0))
    loop.run()
    idle_latency = delivered_at[0][0]
    # Backlogged regime: waves of WAVE_FLOWS rows every half-epoch.
    base = loop.now
    dispatches_before = counters.dispatches

    def wave(k: int) -> None:
        for flow_id in range(WAVE_FLOWS):
            host.receive(data_packet(plan, flow_id, k + 1))

    for k in range(WAVES):
        loop.schedule_at(base + k * EPOCH / 2, wave, k)
    loop.run()
    engine.flush()
    burst_dispatches = counters.dispatches - dispatches_before
    # Silence decays the pressure; the next lone ADU should flush
    # immediately again.
    loop.run(until=loop.now + 30 * EPOCH)
    probe_sent = loop.now
    host.receive(data_packet(plan, 0, WAVES + 5))
    loop.run()
    settle_latency = delivered_at[0][-1] - probe_sent
    assert all(
        len(delivered_at[fid]) == WAVES for fid in range(1, WAVE_FLOWS)
    ), "storm rows lost"
    return {
        "idle_latency_s": idle_latency,
        "burst_dispatches": burst_dispatches,
        "rows_per_dispatch": WAVES * WAVE_FLOWS / burst_dispatches,
        "settle_latency_s": settle_latency,
        "engine": engine.snapshot(),
    }


def best_of(fn, repeats: int = 3):
    best = None
    result = None
    for _ in range(repeats):
        candidate = fn()
        if best is None or candidate["wall_s"] < best:
            best, result = candidate["wall_s"], candidate
    return result


@pytest.fixture(scope="module")
def record():
    per_packet = best_of(lambda: run_once(1))
    trains = best_of(lambda: run_once(TRAIN))
    for result in (per_packet, trains):
        check_delivery(result)
    fixed = run_adaptive(adaptive=False)
    adaptive = run_adaptive(adaptive=True)

    total = N_FLOWS * N_ADUS
    return {
        "n_flows": N_FLOWS,
        "adus_per_flow": N_ADUS,
        "payload_bytes": PAYLOAD,
        "n_shards": N_SHARDS,
        "max_train": TRAIN,
        "per_packet": {
            "wall_s": per_packet["wall_s"],
            "adus_per_s": total / per_packet["wall_s"],
            "demux_runs": per_packet["demux"]["demux_runs"],
            "worker_services": per_packet["demux"]["worker_services"],
        },
        "trains": {
            "wall_s": trains["wall_s"],
            "adus_per_s": total / trains["wall_s"],
            "demux_runs": trains["demux"]["demux_runs"],
            "probes_saved": trains["demux"]["probes_saved"],
            "worker_services": trains["demux"]["worker_services"],
            "link_trains": trains["trains"],
            "link_train_packets": trains["train_packets"],
            "packets_per_train": trains["train_packets"]
            / max(trains["trains"], 1),
            "train_len_hist": {
                str(k): v
                for k, v in trains["demux"]["train_len_hist"].items()
            },
        },
        "speedup": per_packet["wall_s"] / trains["wall_s"],
        "probe_reduction": per_packet["demux"]["demux_runs"]
        / max(trains["demux"]["demux_runs"], 1),
        "adaptive_epochs": {
            "epoch_s": EPOCH,
            "waves": WAVES,
            "wave_rows": WAVE_FLOWS,
            "ramp_rows": RAMP_ROWS,
            "fixed": fixed,
            "adaptive": adaptive,
            "depth_gain": adaptive["rows_per_dispatch"]
            / fixed["rows_per_dispatch"],
        },
    }


def test_bench_packet_trains(benchmark, record):
    benchmark(lambda: run_once(TRAIN))

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    out = OUT_DIR / "bench_packet_trains.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print("PACKET_TRAINS_JSON " + json.dumps(record, sort_keys=True))


def test_bench_per_packet(benchmark):
    benchmark(lambda: run_once(1))


def test_acceptance_packet_trains(record):
    # Headline gate: end-to-end drained ADUs/sec with trains of 32 is
    # at least 2x the per-packet baseline.
    assert record["speedup"] >= SPEEDUP_GATE, record
    # The mechanism is the one claimed: flow-run demux probes the
    # placement memo once per run, not once per packet.
    assert record["probe_reduction"] >= PROBE_GATE, record
    # The link really formed near-full trains (flow-major send order,
    # window far wider than the serialization gap).
    assert record["trains"]["packets_per_train"] >= TRAIN * 0.9, record
    # Per-train worker pokes: far fewer services than packets.
    assert (
        record["trains"]["worker_services"]
        < record["per_packet"]["worker_services"]
    ), record

    adaptive = record["adaptive_epochs"]
    # Idle regime: the adaptive engine flushes a lone ADU immediately;
    # the fixed engine holds it for the full epoch.
    assert adaptive["adaptive"]["idle_latency_s"] == 0.0, adaptive
    assert adaptive["fixed"]["idle_latency_s"] >= EPOCH * 0.9, adaptive
    # Backlogged regime: sustained pressure deepens the adaptive
    # engine's epochs past the fixed engine's.
    assert adaptive["depth_gain"] >= 1.25, adaptive
    # Settled regime: silence decays the pressure back to immediate.
    assert adaptive["adaptive"]["settle_latency_s"] == 0.0, adaptive
