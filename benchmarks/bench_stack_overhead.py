"""E3 — the TCP+ISODE stack experiment (~30x slower, ~97% presentation).

Times a full stack round trip (encode, buffer, checksum, copies, verify,
decode) for both workloads; asserts the paper's headline ratio and share.
"""

import pytest

from repro.bench import experiments
from repro.bench.workloads import PACKET_BYTES, integer_array, octet_payload
from repro.core.stack import ProtocolStack, StackConfig
from repro.presentation.abstract import ArrayOf, Int32, OctetString
from repro.presentation.ber import BerCodec
from repro.presentation.costs import TOOLKIT_BER


@pytest.fixture(scope="module")
def result():
    return experiments.stack_overhead()


def test_bench_conversion_stack(benchmark, result, report):
    values = integer_array(PACKET_BYTES // 4)

    def roundtrip():
        stack = ProtocolStack(
            StackConfig(schema=ArrayOf(Int32()), codec=BerCodec(),
                        codec_costs=TOOLKIT_BER)
        )
        value, _, _ = stack.transfer(values)
        return value

    assert benchmark(roundtrip) == values
    report(result)


def test_bench_baseline_stack(benchmark):
    octets = octet_payload(PACKET_BYTES)

    def roundtrip():
        stack = ProtocolStack(
            StackConfig(schema=OctetString(), codec=BerCodec(),
                        codec_costs=TOOLKIT_BER)
        )
        value, _, _ = stack.transfer(octets)
        return value

    assert benchmark(roundtrip) == octets


def test_shape_matches_paper(result):
    assert 20.0 <= result.measured("relative slowdown") <= 40.0
    assert result.measured("presentation share of overhead") >= 0.95
