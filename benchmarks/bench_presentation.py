"""Schema-compiled presentation codecs — wall-clock and pass counts.

Two engineerings of the same presentation work, measured on real time:

* **layered-interpreted** — the recursive codec walk per value (decode
  local syntax, re-encode wire syntax) followed by a separate checksum
  pass: three full traversals of every ADU, with the schema re-examined
  for every element.
* **compiled-fused** — the schema compiles once into a conversion
  kernel; conversion and checksum run as one integrated loop inside the
  compiled wire plan, so each ADU is read exactly once.

Outputs and checksums are asserted byte-identical between the two.  The
one-read-pass claim is verified against the substrate's own
:func:`repro.machine.accounting.datapath_counters` — measured, not
asserted.  BER (variable layout — compiled decode/encode, not a fused
permutation) is reported ungated for reference.  Emits a
machine-readable JSON record (``PRESENTATION_JSON`` line and
``benchmarks/out/bench_presentation.json``) for the CI artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.bench import experiments
from repro.bench.workloads import integer_array
from repro.buffers.chain import BufferChain
from repro.buffers.segment import Segment
from repro.ilp.compiler import PlanCache
from repro.machine.accounting import datapath_counters
from repro.machine.profile import MIPS_R2000
from repro.presentation.abstract import ArrayOf, Int32
from repro.presentation.ber import BerCodec
from repro.presentation.compiler import CodecCache
from repro.presentation.lwts import LwtsCodec
from repro.stages.checksum import internet_checksum
from repro.stages.presentation import PresentationConvertStage
from repro.ilp.pipeline import Pipeline
from repro.stages.checksum import ChecksumComputeStage

N_INTEGERS = 1024
N_ADUS = 64
SCHEMA = ArrayOf(Int32(), fixed_count=N_INTEGERS)
LOCAL = LwtsCodec(byte_order="little")
WIRE = LwtsCodec(byte_order="big")


@pytest.fixture(scope="module")
def payloads():
    values = [integer_array(N_INTEGERS, seed=70 + i) for i in range(N_ADUS)]
    return [LOCAL.encode(value, SCHEMA) for value in values]


def run_interpreted(payloads: list[bytes]) -> tuple[list[bytes], list[int]]:
    """Layered-interpreted: walk, re-walk, then a separate checksum."""
    outputs = []
    checksums = []
    for payload in payloads:
        value = LOCAL.decode(payload, SCHEMA)
        wire = WIRE.encode(value, SCHEMA)
        outputs.append(wire)
        checksums.append(internet_checksum(wire))
    return outputs, checksums


def make_fused_plan(plan_cache: PlanCache, codec_cache: CodecCache):
    pipeline = Pipeline(
        [
            PresentationConvertStage(
                SCHEMA, LOCAL, WIRE, codec_cache=codec_cache
            ),
            ChecksumComputeStage(),
        ],
        name="presentation-wire",
    )
    return plan_cache.get_or_compile(pipeline, MIPS_R2000)


def run_compiled(plan, payloads: list[bytes]) -> tuple[list[bytes], list[int]]:
    """Compiled-fused: conversion and checksum in one integrated loop."""
    outputs = []
    checksums = []
    for payload in payloads:
        output, observations = plan.run(payload)
        outputs.append(output)
        checksums.append(observations["checksum-internet"])
    return outputs, checksums


def best_of(fn, repeats: int = 5) -> tuple[float, object]:
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.fixture(scope="module")
def record(payloads):
    total_bytes = sum(len(p) for p in payloads)
    plan_cache = PlanCache(capacity=8)
    codec_cache = CodecCache()
    plan = make_fused_plan(plan_cache, codec_cache)

    interp_s, (interp_out, interp_sums) = best_of(
        lambda: run_interpreted(payloads)
    )
    fused_s, (fused_out, fused_sums) = best_of(
        lambda: run_compiled(plan, payloads)
    )
    assert fused_out == interp_out, "compiled output diverged"
    assert fused_sums == interp_sums, "compiled checksum diverged"

    # One-read-pass verification: feed multi-segment arrival chains and
    # count traversals on the datapath counters.  The input is read once
    # (the word gather); the only other traversal is the write-back of
    # the converted output.
    counters = datapath_counters()
    counters.reset()
    for payload in payloads:
        half = (len(payload) // 2) & ~3
        chain = BufferChain(
            [Segment.wrap(payload[:half]), Segment.wrap(payload[half:])]
        )
        output, observations = plan.run_chain(chain)
        assert observations["checksum-internet"] == internet_checksum(output)
    snap = counters.snapshot()
    counters.reset()
    gather_bytes = snap["copies_by_label"].get("gather-words", 0)
    chain_read_passes_per_adu = gather_bytes / total_bytes

    # BER for reference: variable layout, so conversion is a compiled
    # decode + encode rather than a fused permutation.  Ungated.
    ber = BerCodec()
    ber_schema = ArrayOf(Int32())
    values = [LOCAL.decode(p, SCHEMA) for p in payloads]
    ber_interp_s, _ = best_of(
        lambda: [ber.encode(v, ber_schema) for v in values], repeats=3
    )
    compiled_ber = codec_cache.get_or_compile(ber_schema, ber)
    ber_compiled_s, ber_out = best_of(
        lambda: compiled_ber.encode_batch(values), repeats=3
    )
    assert ber_out == [ber.encode(v, ber_schema) for v in values]

    return {
        "n_adus": N_ADUS,
        "adu_bytes": 4 * N_INTEGERS,
        "total_bytes": total_bytes,
        "interpreted_layered": {
            "wall_s": interp_s,
            "mb_per_s": total_bytes / interp_s / 1e6,
        },
        "compiled_fused": {
            "wall_s": fused_s,
            "mb_per_s": total_bytes / fused_s / 1e6,
        },
        "speedup": interp_s / fused_s,
        "chain_read_passes_per_adu": chain_read_passes_per_adu,
        "codec_cache": codec_cache.snapshot(),
        "ber_reference": {
            "interpreted_wall_s": ber_interp_s,
            "compiled_wall_s": ber_compiled_s,
            "speedup": ber_interp_s / ber_compiled_s,
        },
    }


def test_bench_compiled_fused(benchmark, record, payloads, report):
    plan = make_fused_plan(PlanCache(capacity=8), CodecCache())
    benchmark(lambda: run_compiled(plan, payloads))

    out_dir = Path(__file__).resolve().parent / "out"
    out_dir.mkdir(parents=True, exist_ok=True)
    out = out_dir / "bench_presentation.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print("PRESENTATION_JSON " + json.dumps(record, sort_keys=True))
    report(experiments.compiled_presentation())


def test_bench_interpreted_layered(benchmark, payloads):
    benchmark(lambda: run_interpreted(payloads))


def test_acceptance_speedup(record):
    # Headline criterion: the compiled-fused engineering moves the same
    # ADU stream at least 3x faster than the layered interpreted walk.
    assert record["speedup"] >= 3.0, record["speedup"]
    # And it reads each arrival chain exactly once.
    assert record["chain_read_passes_per_adu"] == pytest.approx(1.0)
    # The schema compiled once per (schema, syntax) pair, not per ADU.
    assert record["codec_cache"]["misses"] <= 4
