"""E4 — ASN.1 conversion fused with the TCP checksum (28 -> 24 Mb/s).

Times the real fused pipeline (encode + checksum in one executor group);
asserts the paper's point: the checksum is nearly free once fused.
"""

import pytest

from repro.bench import experiments
from repro.bench.workloads import PACKET_BYTES, integer_array
from repro.ilp.executor import IntegratedExecutor, LayeredExecutor
from repro.ilp.pipeline import Pipeline
from repro.machine.profile import MIPS_R2000
from repro.presentation.abstract import ArrayOf, Int32
from repro.presentation.ber import BerCodec
from repro.presentation.costs import TUNED_BER
from repro.stages.checksum import ChecksumComputeStage
from repro.stages.presentation import PresentationEncodeStage


@pytest.fixture(scope="module")
def result():
    return experiments.ilp_presentation_checksum()


def make_pipeline(values):
    encode = PresentationEncodeStage(BerCodec(), ArrayOf(Int32()), TUNED_BER)
    encode.set_value(values)
    return Pipeline([encode, ChecksumComputeStage()], name="encode+csum")


def test_bench_fused(benchmark, result, report):
    values = integer_array(PACKET_BYTES // 4)
    executor = IntegratedExecutor(MIPS_R2000)
    out, _ = benchmark(executor.execute, make_pipeline(values), b"")
    assert BerCodec().decode(out, ArrayOf(Int32())) == values
    report(result)


def test_bench_separate(benchmark):
    values = integer_array(PACKET_BYTES // 4)
    executor = LayeredExecutor(MIPS_R2000)
    out, _ = benchmark(executor.execute, make_pipeline(values), b"")
    assert len(out) > 0


def test_shape_matches_paper(result):
    alone = result.measured("encode alone")
    fused = result.measured("encode + checksum, integrated")
    separate = result.measured("encode + checksum, separate passes")
    assert alone == pytest.approx(28.0, rel=0.01)
    assert separate < fused < alone
    assert (alone - fused) / alone < 0.15  # nearly free (paper: 14%)
