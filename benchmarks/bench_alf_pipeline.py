"""F1 — goodput vs loss with an application-bottleneck receiver.

The paper's §5 argument rendered as a figure: in-order (TCP-style)
delivery stalls the presentation pipeline on every loss; ALF keeps the
bottleneck application fed.  The benchmark times one full simulated
transfer per mode.
"""

import pytest

from repro.bench import experiments
from repro.bench.experiments import _pipeline_goodput


@pytest.fixture(scope="module")
def result():
    return experiments.alf_pipeline(
        loss_rates=(0.0, 0.02, 0.05), total_bytes=400_000
    )


def test_bench_tcp_mode(benchmark, result, report):
    goodput, _ = benchmark(
        _pipeline_goodput, "tcp", 0.02, 200_000, 4096, 0
    )
    assert goodput > 0
    report(result)


def test_bench_alf_mode(benchmark):
    goodput, _ = benchmark(
        _pipeline_goodput, "alf", 0.02, 200_000, 4096, 0
    )
    assert goodput > 0


def test_shape_matches_paper(result):
    # Parity on a clean path; divergence under loss.
    assert result.measured("alf loss=0.00") == pytest.approx(
        result.measured("tcp loss=0.00"), rel=0.1
    )
    assert result.measured("alf loss=0.05") > 3 * result.measured(
        "tcp loss=0.05"
    )
    assert result.measured("alf loss=0.05") > 0.7 * result.measured(
        "alf loss=0.00"
    )
