"""A1 (ablation) — what ordering constraints cost, what speculation buys.

The receive path's VERIFIED fact forces a loop break at the checksum;
speculative fusion (optimistic delivery, late abort) removes it.  The
benchmark times the constraint planner itself plus a full execution.
"""

import pytest

from repro.bench import experiments
from repro.bench.workloads import PACKET_BYTES, octet_payload
from repro.ilp.fusion import plan_fusion
from repro.stages.base import Facts
from repro.stages.checksum import ChecksumVerifyStage
from repro.stages.copy import CopyStage
from repro.stages.encrypt import DecryptStage, XorStreamCipher
from repro.stages.netio import NetworkExtractStage


@pytest.fixture(scope="module")
def result():
    return experiments.ordering_constraints()


def make_stages():
    return [
        NetworkExtractStage(),
        ChecksumVerifyStage(),
        DecryptStage(XorStreamCipher(7)),
        CopyStage(name="move", category="application"),
    ]


INITIAL = frozenset({Facts.DEMUXED, Facts.TU_IN_ORDER, Facts.ADU_COMPLETE})


def test_bench_fusion_planner(benchmark, result, report):
    plan = benchmark(plan_fusion, make_stages(), INITIAL)
    assert plan.n_loops >= 2
    report(result)


def test_bench_speculative_planner(benchmark):
    plan = benchmark(plan_fusion, make_stages(), INITIAL, True)
    assert plan.n_loops >= 1


def test_shape(result):
    layered = result.measured("layered")
    integrated = result.measured("integrated (constraints respected)")
    speculative = result.measured("integrated (speculative delivery)")
    assert layered < integrated < speculative
    assert result.measured("illegal pipeline rejected") == 1.0
