"""Rate-paced trains vs. the blast: goodput, boundaries, backpressure.

Three measurements, one argument: §3's rate-based flow control ("the
rate at which the flow control window opens is the fundamental control")
carried through the egress path as deliberate packet trains.

**Goodput under cross-traffic.**  A 3-host star through one
store-and-forward switch (train-preserving queues), all links 10 Mb/s.
Host ``a`` offers 400 primary ADUs to a 4-shard host ``b`` while host
``c`` offers 2:1 cross-traffic into the same contended downlink.  Two
engineerings of the identical offered load:

* **unpaced** — the PR-era sender hands every fragment to the link at
  once; the blast overflows the switch queue, the loss is repaired by
  RTO-driven retransmission storms that re-overflow it.
* **paced** — a :class:`~repro.transport.pacing.TrainPacer` releases
  8-packet trains at a configured rate below the residual capacity;
  trains traverse the switch as units and almost nothing drops.

Delivery is asserted byte-identical and exactly-once in both runs.
Headline gates: paced goodput ≥ 1.5× unpaced at equal offered load,
with *fewer* switch queue drops.

**Train boundaries.**  The same paced run, with and without the
cross-traffic.  The switch's train-unit queues plus the downlink's
tag-boundary close keep each shaped train contiguous, so the sharded
receiver's one-pass demux still probes the placement memo about once
per train.  Gate: contended memo probes per delivered ADU within 1.25×
the uncontended level.

**Backpressure convergence.**  A direct path to a slow receiver (an
adaptive :class:`~repro.transport.drain.SharedDrainEngine` whose
epochs read sustained backlog as pressure).  The receiver piggybacks
its quantized pressure on ACKs (``header["dp"]``); the pacer's AIMD
loop must back the rate off within a bounded number of RTTs, and the
transfer must finish with **zero** retransmissions — rate adaptation,
not loss recovery.  Emits a machine-readable JSON record
(``PACING_JSON`` line and ``benchmarks/out/bench_pacing.json``) for
the CI gate and artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.adu import Adu
from repro.machine.accounting import ShardCounters
from repro.net.packet import Packet
from repro.net.shard import ShardedHost, shard_index
from repro.net.topology import hosts_via_switch, two_hosts
from repro.sim.rng import RngStreams
from repro.transport.alf import AlfReceiver, AlfSender, RecoveryMode
from repro.transport.drain import SharedDrainEngine
from repro.transport.pacing import TrainPacer

# Contended-star scenario.  10 Mb/s links move 1.25e6 wire bytes/s;
# cross-traffic offers 800 KB/s and the paced primary 400 KB/s (2:1),
# filling ~96% of the contended downlink — the unpaced primary offers
# the same ADUs as one uplink-speed blast instead, and its RTO sits
# below the congested queueing delay, so the blast's losses amplify
# into the §5 retransmission storm the pacer is built to avoid.
LINK_BW = 10e6
PROP = 0.005
PAYLOAD = 960           # + 40 header = 1000 wire bytes
MTU = 1024              # single-fragment ADUs
N_ADUS = 400
TARGET_TRAIN = 8
PACED_RATE = 400_000.0
CROSS_RATE = 800_000.0
CROSS_BURST = 4
QUEUE_CAP = 32
N_SHARDS = 4
RTO = 0.10
MAX_ATTEMPTS = 200
STEP = 0.01             # drain cadence of the settle loop (sim s)
LIMIT = 30.0            # sim-time budget per run

GOODPUT_GATE = 1.5
PROBE_GATE = 1.25

# Backpressure scenario.  The start rate well exceeds what the slow
# receiver absorbs; ramp_rows sits above target_train so a lone shaped
# train reads as nominal, only genuine epoch-overlap as pressure.
CONV_RATE0 = 2_000_000.0
CONV_ADUS = 200
CONV_EPOCH = 0.01
CONV_RAMP_ROWS = 32
CONV_RTT = 2 * PROP + 2 * (PAYLOAD + 40) * 8 / LINK_BW + CONV_EPOCH
CONV_RTT_GATE = 20      # first backoff within this many RTTs
CONV_RATE_GATE = 0.5    # final rate at or below this fraction of start

OUT_DIR = Path(__file__).resolve().parent / "out"


def payload_for(seq: int) -> bytes:
    return bytes((seq * 37 + offset) & 0xFF for offset in range(PAYLOAD))


def run_contended(paced: bool, cross: bool) -> dict[str, object]:
    """One full primary transfer through the contended switch."""
    net = hosts_via_switch(
        ["a", "b", "c"],
        seed=11,
        bandwidth_bps=LINK_BW,
        propagation_delay=PROP,
        queue_capacity=QUEUE_CAP,
        preserve_trains=True,
        train_fairness_cap=TARGET_TRAIN,
        max_train=TARGET_TRAIN,
        train_window=1e-3,
    )
    loop = net.loop
    demux = ShardCounters()
    sharded = ShardedHost(
        net.hosts["b"], N_SHARDS, rng=RngStreams(5), counters=demux
    )
    sharded.attach_link(net.downlinks["b"])

    delivered: list[bytes] = []
    flow_id = 1
    shard = sharded.shards[shard_index("alf", flow_id, N_SHARDS)]
    AlfReceiver(
        shard.loop,
        shard.host,
        "a",
        flow_id,
        deliver=lambda adu: delivered.append(bytes(adu.payload)),
        ack_interval=0,
        drain_engine=shard.engine,
    )

    pacer = (
        TrainPacer(
            loop,
            rate_bytes_per_s=PACED_RATE,
            target_train=TARGET_TRAIN,
            mtu=MTU,
            # The configured rate IS the ceiling (§3: computed out-of-
            # band); ACK feedback may only lower it.  Without the cap
            # the idle-pressure raises would creep past the residual
            # capacity mid-run.
            max_rate_bytes_per_s=PACED_RATE,
            name="pacer-a",
        )
        if paced
        else None
    )
    done_at: list[float] = []
    sender = AlfSender(
        loop,
        net.hosts["a"],
        "b",
        flow_id,
        mtu=MTU,
        recovery=RecoveryMode.TRANSPORT_BUFFER,
        rto=RTO,
        max_attempts=MAX_ATTEMPTS,
        pacing=pacer,
        on_complete=lambda: done_at.append(loop.now),
    )

    if cross:
        # Constant-rate competing load: CROSS_BURST wire-size packets
        # per tick, scheduled across the whole sim budget (the settle
        # loop exits as soon as the primary transfer completes).
        tick = CROSS_BURST * (PAYLOAD + 40) / CROSS_RATE
        host_c = net.hosts["c"]

        def cross_burst() -> None:
            for _ in range(CROSS_BURST):
                host_c.send(
                    Packet(
                        src="c",
                        dst="b",
                        protocol="cross",
                        flow_id=9,
                        header={},
                        payload=bytes(PAYLOAD),
                    )
                )

        n_ticks = int(LIMIT / tick)
        for k in range(n_ticks):
            loop.schedule_at(k * tick, cross_burst)

    for seq in range(N_ADUS):
        sender.send_adu(Adu(seq, payload_for(seq), {"seq": seq}))
    sender.close()

    try:
        while loop.now < LIMIT and not done_at:
            loop.run(until=loop.now + STEP)
            sharded.drain()
        loop.run(until=loop.now + STEP)
        sharded.drain()
    finally:
        leaks = sharded.shutdown()

    assert done_at, "primary transfer did not complete within the budget"
    assert not sender.adus_abandoned, sender.adus_abandoned
    assert sorted(delivered) == sorted(
        payload_for(seq) for seq in range(N_ADUS)
    ), "delivery diverged from the offered ADUs"
    for index, report in leaks.items():
        assert report == [], f"shard {index} leaked: {report}"

    elapsed = done_at[0]
    switch = net.switch.stats
    return {
        "paced": paced,
        "cross": cross,
        "time_s": elapsed,
        "goodput_bytes_per_s": N_ADUS * PAYLOAD / elapsed,
        "retransmissions": sender.stats.retransmissions,
        "segments_sent": sender.stats.segments_sent,
        "queue_drops": dict(switch.queue_drops),
        "queue_drops_total": sum(switch.queue_drops.values()),
        "trains_joined": switch.trains_joined,
        "train_units": switch.train_units,
        "demux_runs": demux.demux_runs,
        "probes_per_adu": demux.demux_runs / N_ADUS,
        "pacer": pacer.snapshot() if pacer is not None else None,
    }


def run_convergence() -> dict[str, object]:
    """High-rate pacer against a slow (adaptive-epoch) receiver."""
    path = two_hosts(
        seed=7,
        bandwidth_bps=LINK_BW,
        propagation_delay=PROP,
        max_train=TARGET_TRAIN,
        train_window=1e-3,
        pacing=True,
        rate=CONV_RATE0,
        target_train=TARGET_TRAIN,
    )
    loop = path.loop
    engine = SharedDrainEngine(
        loop,
        max_rows=256,
        max_delay=CONV_EPOCH,
        adaptive=True,
        ramp_rows=CONV_RAMP_ROWS,
    )
    delivered: list[bytes] = []
    AlfReceiver(
        loop,
        path.b,
        "a",
        1,
        deliver=lambda adu: delivered.append(bytes(adu.payload)),
        ack_interval=0,
        drain_engine=engine,
    )
    done_at: list[float] = []
    sender = AlfSender(
        loop,
        path.a,
        "b",
        1,
        mtu=MTU,
        recovery=RecoveryMode.TRANSPORT_BUFFER,
        rto=0.5,
        max_attempts=20,
        pacing=path.pacer,
        on_complete=lambda: done_at.append(loop.now),
    )
    for seq in range(CONV_ADUS):
        sender.send_adu(Adu(seq, payload_for(seq), {"seq": seq}))
    sender.close()
    while loop.now < LIMIT and not done_at:
        loop.run(until=loop.now + STEP)
    assert done_at, "paced transfer did not complete"
    assert sorted(delivered) == sorted(
        payload_for(seq) for seq in range(CONV_ADUS)
    )
    pacer = path.pacer
    first = pacer.first_backoff_time
    return {
        "rate0_bytes_per_s": CONV_RATE0,
        "rtt_s": CONV_RTT,
        "time_s": done_at[0],
        "backoffs": pacer.backoffs,
        "raises": pacer.raises,
        "first_backoff_s": first,
        "rtts_to_first_backoff": (
            first / CONV_RTT if first is not None else None
        ),
        "final_rate_bytes_per_s": pacer.rate_bytes_per_s,
        "rate_fraction": pacer.rate_bytes_per_s / CONV_RATE0,
        "retransmissions": sender.stats.retransmissions,
    }


@pytest.fixture(scope="module")
def record():
    unpaced = run_contended(paced=False, cross=True)
    paced = run_contended(paced=True, cross=True)
    uncontended = run_contended(paced=True, cross=False)
    convergence = run_convergence()
    return {
        "n_adus": N_ADUS,
        "payload_bytes": PAYLOAD,
        "target_train": TARGET_TRAIN,
        "paced_rate_bytes_per_s": PACED_RATE,
        "cross_rate_bytes_per_s": CROSS_RATE,
        "queue_capacity": QUEUE_CAP,
        "unpaced": unpaced,
        "paced": paced,
        "uncontended": uncontended,
        "goodput_ratio": paced["goodput_bytes_per_s"]
        / unpaced["goodput_bytes_per_s"],
        "probe_ratio": paced["probes_per_adu"]
        / max(uncontended["probes_per_adu"], 1e-9),
        "convergence": convergence,
    }


def test_bench_pacing(benchmark, record):
    benchmark(run_convergence)

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    out = OUT_DIR / "bench_pacing.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print("PACING_JSON " + json.dumps(record, sort_keys=True))


def test_acceptance_pacing(record):
    # Headline gate: shaped trains beat the blast where it counts —
    # delivered goodput at equal offered load under 2:1 cross-traffic.
    assert record["goodput_ratio"] >= GOODPUT_GATE, record
    # The mechanism: the blast overflows the switch queue, the paced
    # run barely touches it.
    assert (
        record["paced"]["queue_drops_total"]
        < record["unpaced"]["queue_drops_total"]
    ), record
    # Shaping, not loss recovery: the paced run repairs (almost)
    # nothing while the unpaced run lives off retransmission.
    assert (
        record["paced"]["retransmissions"]
        < record["unpaced"]["retransmissions"]
    ), record

    # Train boundaries survive the contended switch: the sharded
    # receiver's memo probes per delivered ADU stay at the uncontended
    # train level.
    assert record["probe_ratio"] <= PROBE_GATE, record
    assert record["paced"]["train_units"] > 0, record

    # Backpressure: the drain-pressure loop backs the rate off within
    # a bounded number of RTTs and the transfer needs zero repairs.
    conv = record["convergence"]
    assert conv["backoffs"] >= 1, conv
    assert conv["rtts_to_first_backoff"] is not None, conv
    assert conv["rtts_to_first_backoff"] <= CONV_RTT_GATE, conv
    assert conv["rate_fraction"] <= CONV_RATE_GATE, conv
    assert conv["retransmissions"] == 0, conv
