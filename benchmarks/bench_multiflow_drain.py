"""Host-level shared drain engine — dispatch amortization across flows.

Two engineerings of the receive-side drain for a host serving 64
concurrent secure associations that share one wire-plan shape
([checksum, decrypt, convert]):

* **per-flow** — the PR-4 baseline: every flow batch-drains its own
  reassembly queue, one :meth:`CompiledPlan.run_batch` dispatch per flow
  per completion event.
* **shared** — every accepted flow registers with one host-wide
  :class:`~repro.transport.drain.SharedDrainEngine`; completions across
  flows coalesce per drain epoch into a single ``run_batch`` over every
  flow's rows, collected round-robin.

Both engineerings run the identical simulated workload (same seeds, same
interleaved send order); delivery is asserted byte-identical and
exactly-once.  The headline criteria: the shared engine issues at least
2x fewer plan dispatches and its end-to-end wall-clock is no worse.
Emits a machine-readable JSON record (``MULTIFLOW_DRAIN_JSON`` line and
``benchmarks/out/bench_multiflow_drain.json``) for the CI gate and
artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.bench.workloads import integer_array
from repro.core.adu import Adu
from repro.ilp.compiler import PlanCache
from repro.machine.accounting import DrainCounters
from repro.net.topology import two_hosts
from repro.presentation.abstract import ArrayOf, Int32
from repro.presentation.lwts import LwtsCodec
from repro.presentation.negotiate import LocalSyntax
from repro.transport.drain import SharedDrainEngine
from repro.transport.session import (
    SessionConfig,
    SessionInitiator,
    SessionListener,
)

N_FLOWS = 64
N_ADUS = 4
N_INTEGERS = 64
KEY = 0x6B8B4567
EPOCH = 0.005
SCHEMAS = {"ints": ArrayOf(Int32())}
LOCAL = LwtsCodec(byte_order="big")  # the initiators' syntax
DELIVERED_AS = LwtsCodec(byte_order="little")  # the listener's syntax

OUT_DIR = Path(__file__).resolve().parent / "out"


def run_scenario(shared: bool, adaptive: bool = False) -> dict[str, object]:
    """One full simulated run; returns dispatch counts and payloads."""
    path = two_hosts(seed=7)
    plan_cache = PlanCache(capacity=32)
    counters = DrainCounters()
    engine = (
        SharedDrainEngine(
            path.loop,
            max_delay=EPOCH,
            adaptive=adaptive,
            ramp_rows=8,
            counters=counters,
        )
        if shared
        else None
    )
    deliver_times: dict[int, list[float]] = {}
    delivered: dict[int, list[bytes]] = {}
    listener = SessionListener(
        path.loop,
        path.b,
        SCHEMAS,
        deliver=lambda fid, adu: (
            delivered.setdefault(fid, []).append(bytes(adu.payload)),
            deliver_times.setdefault(fid, []).append(path.loop.now),
        ),
        plan_cache=plan_cache,
        presentation=True,
        encryption=KEY,
        batch_drain=not shared,
        drain_engine=engine,
    )
    initiators = [
        SessionInitiator(
            path.loop,
            path.a,
            "b",
            SessionConfig(
                schema_name="ints",
                local_syntax=LocalSyntax(f"init-{index}", "big"),
            ),
            SCHEMAS,
            plan_cache=plan_cache,
            presentation=True,
            encryption=KEY,
        )
        for index in range(N_FLOWS)
    ]
    path.loop.run(until=5)
    assert all(initiator.established for initiator in initiators)

    schema = SCHEMAS["ints"]
    # Idle-regime probe: one lone ADU on an otherwise quiet host.  A
    # fixed epoch holds it for the full ``max_delay``; an adaptive
    # epoch flushes it immediately.  (The probe is flow 0's seq 0 —
    # skipped below so every flow still delivers each seq exactly once.)
    probe_sent = path.loop.now
    initiators[0].session.sender.send_adu(
        Adu(0, LOCAL.encode(integer_array(N_INTEGERS, seed=0), schema))
    )
    path.loop.run(until=probe_sent + 4 * EPOCH)
    probe_times = deliver_times.get(initiators[0].flow_id, [])
    idle_latency = probe_times[0] - probe_sent if probe_times else None
    for seq in range(N_ADUS):
        for index, initiator in enumerate(initiators):
            if index == 0 and seq == 0:
                continue
            value = integer_array(N_INTEGERS, seed=31 * index + seq)
            initiator.session.sender.send_adu(
                Adu(seq, LOCAL.encode(value, schema))
            )
    path.loop.run(until=120)
    if engine is not None:
        engine.flush()

    receivers = [
        listener.sessions[initiator.flow_id].receiver
        for initiator in initiators
    ]
    payloads = [delivered.get(initiator.flow_id, []) for initiator in initiators]
    dispatches = (
        counters.dispatches
        if shared
        else sum(receiver.batch_drains for receiver in receivers)
    )
    return {
        "dispatches": dispatches,
        "payloads": payloads,
        "snapshot": counters.snapshot() if shared else None,
        "groups": engine.group_count if engine is not None else None,
        "idle_latency_s": idle_latency,
    }


def best_of(fn, repeats: int = 3) -> tuple[float, object]:
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.fixture(scope="module")
def record():
    per_flow_s, per_flow = best_of(lambda: run_scenario(shared=False))
    shared_s, shared = best_of(lambda: run_scenario(shared=True))
    adaptive = run_scenario(shared=True, adaptive=True)

    # Byte-identical, exactly-once delivery under all engineerings.
    schema = SCHEMAS["ints"]
    for index in range(N_FLOWS):
        expected = [
            DELIVERED_AS.encode(
                integer_array(N_INTEGERS, seed=31 * index + seq), schema
            )
            for seq in range(N_ADUS)
        ]
        assert per_flow["payloads"][index] == expected, f"per-flow diverged ({index})"
        assert shared["payloads"][index] == expected, f"shared diverged ({index})"
        assert adaptive["payloads"][index] == expected, f"adaptive diverged ({index})"

    assert shared["groups"] == 1, "flows did not share one plan shape"
    snapshot = shared["snapshot"]
    return {
        "n_flows": N_FLOWS,
        "adus_per_flow": N_ADUS,
        "adu_bytes": 4 * N_INTEGERS,
        "drain_epoch_s": EPOCH,
        "per_flow": {
            "dispatches": per_flow["dispatches"],
            "wall_s": per_flow_s,
        },
        "shared": {
            "dispatches": shared["dispatches"],
            "wall_s": shared_s,
            "rows_per_dispatch": snapshot["rows_per_dispatch"],
            "cross_flow_batches": snapshot["cross_flow_batches"],
            "fairness_stalls": snapshot["fairness_stalls"],
            "epochs": snapshot["epochs"],
            "plan_groups": shared["groups"],
            "idle_latency_s": shared["idle_latency_s"],
        },
        # The adaptive knob's two regimes on the same workload: a lone
        # idle ADU flushes immediately (vs. waiting out the fixed
        # epoch), while the backlogged bulk still batches cross-flow.
        "adaptive": {
            "dispatches": adaptive["dispatches"],
            "rows_per_dispatch": adaptive["snapshot"]["rows_per_dispatch"],
            "idle_latency_s": adaptive["idle_latency_s"],
        },
        "dispatch_amortization": per_flow["dispatches"]
        / max(shared["dispatches"], 1),
        "wall_clock_ratio": shared_s / per_flow_s,
    }


def test_bench_shared_drain(benchmark, record):
    benchmark(lambda: run_scenario(shared=True))

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    out = OUT_DIR / "bench_multiflow_drain.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print("MULTIFLOW_DRAIN_JSON " + json.dumps(record, sort_keys=True))


def test_bench_per_flow_drain(benchmark):
    benchmark(lambda: run_scenario(shared=False))


def test_acceptance_multiflow_drain(record):
    # Headline criterion: coalescing 64 flows' completions into shared
    # epochs cuts plan dispatches at least in half.
    assert record["dispatch_amortization"] >= 2.0, record
    # And the amortization is not bought with wall-clock: the shared
    # engine's end-to-end run is no slower (20% tolerance for noise).
    assert record["wall_clock_ratio"] <= 1.2, record
    # The rows really were cross-flow batches, fairly collected.
    assert record["shared"]["cross_flow_batches"] >= 1
    assert record["shared"]["rows_per_dispatch"] > 1.0
    # Adaptive epochs: the idle probe flushes a full fixed epoch sooner
    # than under the fixed knob, and backlog still batches cross-flow.
    assert (
        record["shared"]["idle_latency_s"] - record["adaptive"]["idle_latency_s"]
        >= EPOCH * 0.9
    ), record
    assert record["adaptive"]["rows_per_dispatch"] > 1.0, record
