"""Zero-copy datapath — copies, memory passes, and wall-clock.

Two engineerings of the same steady-state ALF receive path, measured
end-to-end (sender -> link -> host -> receiver -> delivered bytes) at
1 KB, 64 KB and 1 MB ADUs:

* **layered** — every layer materializes: fragments are sliced as bytes,
  reassembly joins them, the wire checksum packs to words and unpacks.
* **chain** — fragments are scatter-gather views over the ADU's buffer,
  reassembly is structural, the checksum is one in-place read pass, and
  the only copy is the single linearize at the application hand-off.

Delivered payloads are asserted byte-identical between the two.  The
copy and memory-pass figures come from the substrate's own
:func:`repro.machine.accounting.datapath_counters` — measured, not
asserted.  Emits a machine-readable JSON record (``ZERO_COPY_JSON`` line
and ``benchmarks/out/bench_zero_copy.json``) for the CI artifact.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from repro.core.adu import Adu
from repro.machine.accounting import datapath_counters
from repro.net.host import Host
from repro.net.link import Link
from repro.sim.eventloop import EventLoop
from repro.transport.alf import AlfReceiver, AlfSender

MTU = 8192
#: (label, adu_bytes, n_adus) — 64 KB / MTU 8 KB is the acceptance
#: configuration: a steady-state receive of 8-fragment ADUs.
SIZES = [("1KB", 1024, 8), ("64KB", 64 * 1024, 4), ("1MB", 1024 * 1024, 1)]


def make_payloads(adu_bytes: int, n_adus: int) -> list[bytes]:
    rng = random.Random(adu_bytes)
    return [rng.randbytes(adu_bytes) for _ in range(n_adus)]


def run_transfer(payloads: list[bytes], zero_copy: bool) -> list[bytes]:
    """One complete transfer; returns the delivered payloads in order."""
    loop = EventLoop()
    a = Host(loop, "a")
    b = Host(loop, "b")
    link_ab = Link(loop, random.Random(1), bandwidth_bps=1e9)
    link_ba = Link(loop, random.Random(2), bandwidth_bps=1e9)
    a.add_link("b", link_ab)
    b.add_link("a", link_ba)
    link_ab.connect(b.receive)
    link_ba.connect(a.receive)
    delivered: dict[int, bytes] = {}
    AlfReceiver(
        loop, b, "a", 1,
        deliver=lambda d: delivered.__setitem__(d.sequence, d.payload),
        zero_copy=zero_copy,
    )
    sender = AlfSender(loop, a, "b", 1, mtu=MTU, zero_copy=zero_copy)
    for i, payload in enumerate(payloads):
        sender.send_adu(Adu(sequence=i, payload=payload, name={"i": i}))
    loop.run(until=60.0)
    assert len(delivered) == len(payloads), "transfer did not complete"
    return [delivered[i] for i in range(len(payloads))]


def measure(payloads: list[bytes], zero_copy: bool) -> dict:
    counters = datapath_counters()
    counters.reset()
    start = time.perf_counter()
    outputs = run_transfer(payloads, zero_copy)
    elapsed = time.perf_counter() - start
    snap = counters.snapshot()
    counters.reset()
    return {
        "outputs": outputs,
        "copies": snap["copies"],
        "bytes_copied": snap["bytes_copied"],
        "read_passes": snap["read_passes"],
        "memory_passes": snap["memory_passes"],
        "zero_copy_ops": snap["zero_copy_ops"],
        "copies_by_label": snap["copies_by_label"],
        "wall_s": elapsed,
    }


@pytest.fixture(scope="module")
def record():
    rows = []
    for label, adu_bytes, n_adus in SIZES:
        payloads = make_payloads(adu_bytes, n_adus)
        layered = measure(payloads, zero_copy=False)
        chain = measure(payloads, zero_copy=True)
        # Alternative schedules of one transfer: the application must
        # receive identical bytes either way.
        assert chain["outputs"] == payloads
        assert layered["outputs"] == payloads
        rows.append(
            {
                "size": label,
                "adu_bytes": adu_bytes,
                "n_adus": n_adus,
                "fragments_per_adu": -(-adu_bytes // MTU),
                "layered": {k: v for k, v in layered.items() if k != "outputs"},
                "chain": {k: v for k, v in chain.items() if k != "outputs"},
                "copy_reduction": layered["copies"] / max(chain["copies"], 1),
                "bytes_copied_reduction": (
                    layered["bytes_copied"] / max(chain["bytes_copied"], 1)
                ),
            }
        )
    return {"mtu": MTU, "rows": rows}


def test_bench_zero_copy_chain(benchmark, record):
    payloads = make_payloads(64 * 1024, 4)
    benchmark(lambda: run_transfer(payloads, zero_copy=True))

    out_dir = Path(__file__).resolve().parent / "out"
    out_dir.mkdir(parents=True, exist_ok=True)
    out = out_dir / "bench_zero_copy.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print("ZERO_COPY_JSON " + json.dumps(record, sort_keys=True))


def test_acceptance_copy_reduction(record):
    for row in record["rows"]:
        # The chain path must do strictly fewer copies at every size.
        assert row["chain"]["copies"] < row["layered"]["copies"], row["size"]
        assert row["chain"]["bytes_copied"] < row["layered"]["bytes_copied"]
    # Headline criterion: steady-state 64 KB ADUs (8 fragments at
    # MTU 8192) see at least 2x fewer byte-copies end to end.
    row_64k = next(r for r in record["rows"] if r["size"] == "64KB")
    assert row_64k["fragments_per_adu"] == 8
    assert row_64k["copy_reduction"] >= 2.0
    assert row_64k["bytes_copied_reduction"] >= 2.0
