"""E5 — transfer control is tens of instructions; manipulation is
thousands of memory cycles per packet (paper §4).

Times a complete clean-path TCP-style transfer (the control path in
action) and asserts the instruction/cycle shape.
"""

import pytest

from repro.bench import experiments
from repro.bench.workloads import file_payload
from repro.net.topology import two_hosts
from repro.transport.tcpstyle import TcpStyleReceiver, TcpStyleSender


@pytest.fixture(scope="module")
def result():
    return experiments.control_vs_manipulation()


def run_transfer():
    path = two_hosts(seed=11, bandwidth_bps=100e6, propagation_delay=0.002)
    received = bytearray()
    TcpStyleReceiver(path.loop, path.b, "a", 1, deliver=received.extend)
    sender = TcpStyleSender(path.loop, path.a, "b", 1)
    data = file_payload(64 * 1024)
    sender.send(data)
    sender.close()
    path.loop.run(until=60)
    return bytes(received) == data


def test_bench_clean_transfer(benchmark, result, report):
    assert benchmark(run_transfer)
    report(result)


def test_shape_matches_paper(result):
    per_packet = result.measured("control instructions / packet")
    assert 10 < per_packet < 150  # tens, not hundreds
    assert result.measured("manipulation / control ratio") > 10
